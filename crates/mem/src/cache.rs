//! A set-associative, write-back, write-allocate cache *timing* model.
//!
//! The model tracks tags, valid and dirty bits only; the actual data lives in
//! the simulator's flat memory image (functional correctness never depends on
//! the cache contents, only timing does).  Replacement is true LRU within a
//! set, which matches the level of detail of the paper's simulator.

/// Result of looking a block up in a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    Hit,
    Miss,
}

/// Information returned by a fill (allocation) operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FillOutcome {
    /// Block address of a dirty line that had to be written back, if any.
    pub writeback: Option<u64>,
    /// Block address of a clean line that was evicted, if any.
    pub evicted: Option<u64>,
}

/// Per-line state bits (packed into one byte).
const VALID: u8 = 1;
const DIRTY: u8 = 2;

/// A set-associative cache.
///
/// Line size and set count are powers of two (asserted at construction), so
/// every block/set/tag computation is a shift or mask — no integer division
/// on the per-access path.  Line state is stored as three parallel arrays
/// (tags, state bytes, LRU timestamps) instead of an array of structs: the
/// all-zero initial state comes straight from the zeroed allocation (no
/// per-line construction — a simulator is built per run in a sweep), and
/// the tag scan of a set touches densely packed words.
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    line_bytes: usize,
    assoc: usize,
    /// `log2(line_bytes)`.
    line_shift: u32,
    /// `num_sets - 1`.
    set_mask: u64,
    /// `log2(line_bytes * num_sets)`.
    tag_shift: u32,
    tags: Vec<u64>,
    /// `VALID` / `DIRTY` bits per line.
    state: Vec<u8>,
    /// LRU timestamps (higher = more recently used).
    lru: Vec<u64>,
    tick: u64,
    /// Most-recently-hit block and its way index: consecutive accesses to
    /// the same line (the overwhelmingly common pattern) skip the set scan.
    /// Reset by any fill or invalidation.  Pure shortcut — statistics, LRU
    /// and dirty bits evolve exactly as without it.
    mru_blk: u64,
    mru_way: usize,
    pub stats: CacheStats,
}

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
    pub invalidations: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl Cache {
    /// Create a cache of `size_bytes` capacity with the given associativity
    /// and line size.  Panics if the geometry is inconsistent.
    pub fn new(name: &'static str, size_bytes: usize, assoc: usize, line_bytes: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc >= 1);
        assert!(
            size_bytes.is_multiple_of(assoc * line_bytes),
            "inconsistent cache geometry"
        );
        let num_sets = size_bytes / (assoc * line_bytes);
        assert!(
            num_sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        let line_shift = line_bytes.trailing_zeros();
        let total = num_sets * assoc;
        Cache {
            name,
            line_bytes,
            assoc,
            line_shift,
            set_mask: num_sets as u64 - 1,
            tag_shift: line_shift + num_sets.trailing_zeros(),
            tags: vec![0; total],
            state: vec![0; total],
            lru: vec![0; total],
            tick: 0,
            mru_blk: u64::MAX,
            mru_way: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Block (line) address of a byte address.
    #[inline]
    pub fn block_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag(&self, addr: u64) -> u64 {
        addr >> self.tag_shift
    }

    /// Byte address of the first block of (`tag`, `set`).
    #[inline]
    fn block_of(&self, tag: u64, set: usize) -> u64 {
        (tag << self.tag_shift) | ((set as u64) << self.line_shift)
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Index of the way holding (`set`, `tag`), if any.
    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let range = self.set_range(set);
        let tags = &self.tags[range.clone()];
        let state = &self.state[range.clone()];
        for (i, (&t, &st)) in tags.iter().zip(state).enumerate() {
            if st & VALID != 0 && t == tag {
                return Some(range.start + i);
            }
        }
        None
    }

    /// Probe the cache without modifying LRU state or statistics.
    pub fn probe(&self, addr: u64) -> LookupResult {
        match self.find(self.set_index(addr), self.tag(addr)) {
            Some(_) => LookupResult::Hit,
            None => LookupResult::Miss,
        }
    }

    /// Access the cache (updating LRU and statistics).  `write` marks the
    /// line dirty on a hit; allocation on a miss is done separately with
    /// [`Cache::fill`] so the caller controls the write-allocate policy.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> LookupResult {
        self.tick += 1;
        self.stats.accesses += 1;
        if self.block_addr(addr) == self.mru_blk {
            let i = self.mru_way;
            self.lru[i] = self.tick;
            if write {
                self.state[i] |= DIRTY;
            }
            self.stats.hits += 1;
            return LookupResult::Hit;
        }
        match self.find(self.set_index(addr), self.tag(addr)) {
            Some(i) => {
                self.lru[i] = self.tick;
                if write {
                    self.state[i] |= DIRTY;
                }
                self.stats.hits += 1;
                self.mru_blk = self.block_addr(addr);
                self.mru_way = i;
                LookupResult::Hit
            }
            None => {
                self.stats.misses += 1;
                LookupResult::Miss
            }
        }
    }

    /// Allocate a line for `addr`, evicting the LRU line of the set if
    /// necessary.  `write` marks the new line dirty (write-allocate).
    pub fn fill(&mut self, addr: u64, write: bool) -> FillOutcome {
        self.mru_blk = u64::MAX;
        self.tick += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let tick = self.tick;

        // If the block is already present just update it.
        if let Some(i) = self.find(set, tag) {
            self.lru[i] = tick;
            if write {
                self.state[i] |= DIRTY;
            }
            return FillOutcome::default();
        }

        // Choose a victim: an invalid way if available, otherwise LRU.
        let range = self.set_range(set);
        let victim = match self.state[range.clone()]
            .iter()
            .position(|s| s & VALID == 0)
        {
            Some(i) => range.start + i,
            None => {
                let mut best = range.start;
                for i in range.clone() {
                    if self.lru[i] < self.lru[best] {
                        best = i;
                    }
                }
                best
            }
        };
        let mut outcome = FillOutcome::default();
        if self.state[victim] & VALID != 0 {
            let victim_addr = self.block_of(self.tags[victim], set);
            if self.state[victim] & DIRTY != 0 {
                outcome.writeback = Some(victim_addr);
                self.stats.writebacks += 1;
            } else {
                outcome.evicted = Some(victim_addr);
            }
        }
        self.tags[victim] = tag;
        self.state[victim] = if write { VALID | DIRTY } else { VALID };
        self.lru[victim] = tick;
        outcome
    }

    /// Invalidate the line containing `addr` if present.  Returns the block
    /// address if the line was dirty (the caller is responsible for pushing
    /// the data to the next level, as required by the exclusive-bit +
    /// inclusion coherence policy of paper §3.2).
    pub fn invalidate(&mut self, addr: u64) -> Option<u64> {
        self.mru_blk = u64::MAX;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        match self.find(set, tag) {
            Some(i) => {
                let was_dirty = self.state[i] & DIRTY != 0;
                self.state[i] = 0;
                self.stats.invalidations += 1;
                if was_dirty {
                    Some(self.block_of(tag, set))
                } else {
                    None
                }
            }
            None => None,
        }
    }

    /// Number of valid lines currently held (used by tests).
    pub fn valid_lines(&self) -> usize {
        self.state.iter().filter(|&&s| s & VALID != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 32-byte lines = 256 bytes.
        Cache::new("test", 256, 2, 32)
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small_cache();
        assert_eq!(c.access(0x100, false), LookupResult::Miss);
        c.fill(0x100, false);
        assert_eq!(c.access(0x100, false), LookupResult::Hit);
        assert_eq!(
            c.access(0x11f, false),
            LookupResult::Hit,
            "same 32-byte line"
        );
        assert_eq!(c.access(0x120, false), LookupResult::Miss, "next line");
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache();
        // Three blocks mapping to the same set (set stride = 4 lines * 32 B = 128 B).
        let a = 0x0;
        let b = 0x80;
        let d = 0x100;
        c.fill(a, false);
        c.fill(b, false);
        // Touch `a` so `b` becomes LRU.
        assert_eq!(c.access(a, false), LookupResult::Hit);
        c.fill(d, false);
        assert_eq!(c.probe(a), LookupResult::Hit);
        assert_eq!(c.probe(b), LookupResult::Miss);
        assert_eq!(c.probe(d), LookupResult::Hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        c.fill(0x0, true); // dirty
        c.fill(0x80, false);
        let out = c.fill(0x100, false); // evicts LRU = 0x0 (dirty)
        assert_eq!(out.writeback, Some(0x0));
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn invalidate_returns_dirty_address() {
        let mut c = small_cache();
        c.fill(0x40, true);
        assert_eq!(c.invalidate(0x40), Some(0x40));
        assert_eq!(c.probe(0x40), LookupResult::Miss);
        // Invalidating a clean or absent line returns None.
        c.fill(0x40, false);
        assert_eq!(c.invalidate(0x40), None);
        assert_eq!(c.invalidate(0xF00), None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_cache();
        c.fill(0x200, false);
        assert_eq!(c.access(0x200, true), LookupResult::Hit);
        // Eviction of that line must now report a writeback.
        c.fill(0x280, false);
        let out = c.fill(0x300, false);
        assert!(
            out.writeback == Some(0x200) || out.evicted == Some(0x200) || out.writeback.is_some()
        );
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = small_cache();
        assert_eq!(c.stats.hit_rate(), 1.0);
        c.access(0x0, false);
        c.fill(0x0, false);
        c.access(0x0, false);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_is_rejected() {
        Cache::new("bad", 100, 3, 24);
    }
}
