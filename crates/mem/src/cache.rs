//! A set-associative, write-back, write-allocate cache *timing* model.
//!
//! The model tracks tags, valid and dirty bits only; the actual data lives in
//! the simulator's flat memory image (functional correctness never depends on
//! the cache contents, only timing does).  Replacement is true LRU within a
//! set, which matches the level of detail of the paper's simulator.

/// Result of looking a block up in a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    Hit,
    Miss,
}

/// Information returned by a fill (allocation) operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FillOutcome {
    /// Block address of a dirty line that had to be written back, if any.
    pub writeback: Option<u64>,
    /// Block address of a clean line that was evicted, if any.
    pub evicted: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (higher = more recently used).
    lru: u64,
}

/// A set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    line_bytes: usize,
    num_sets: usize,
    assoc: usize,
    lines: Vec<Line>,
    tick: u64,
    pub stats: CacheStats,
}

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
    pub invalidations: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl Cache {
    /// Create a cache of `size_bytes` capacity with the given associativity
    /// and line size.  Panics if the geometry is inconsistent.
    pub fn new(name: &'static str, size_bytes: usize, assoc: usize, line_bytes: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc >= 1);
        assert!(
            size_bytes.is_multiple_of(assoc * line_bytes),
            "inconsistent cache geometry"
        );
        let num_sets = size_bytes / (assoc * line_bytes);
        assert!(
            num_sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        Cache {
            name,
            line_bytes,
            num_sets,
            assoc,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0
                };
                num_sets * assoc
            ],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Block (line) address of a byte address.
    pub fn block_addr(&self, addr: u64) -> u64 {
        addr / self.line_bytes as u64 * self.line_bytes as u64
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.line_bytes as u64) % self.num_sets as u64) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / self.line_bytes as u64 / self.num_sets as u64
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Probe the cache without modifying LRU state or statistics.
    pub fn probe(&self, addr: u64) -> LookupResult {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        for line in &self.lines[self.set_range(set)] {
            if line.valid && line.tag == tag {
                return LookupResult::Hit;
            }
        }
        LookupResult::Miss
    }

    /// Access the cache (updating LRU and statistics).  `write` marks the
    /// line dirty on a hit; allocation on a miss is done separately with
    /// [`Cache::fill`] so the caller controls the write-allocate policy.
    pub fn access(&mut self, addr: u64, write: bool) -> LookupResult {
        self.tick += 1;
        self.stats.accesses += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let range = self.set_range(set);
        let tick = self.tick;
        for line in &mut self.lines[range] {
            if line.valid && line.tag == tag {
                line.lru = tick;
                if write {
                    line.dirty = true;
                }
                self.stats.hits += 1;
                return LookupResult::Hit;
            }
        }
        self.stats.misses += 1;
        LookupResult::Miss
    }

    /// Allocate a line for `addr`, evicting the LRU line of the set if
    /// necessary.  `write` marks the new line dirty (write-allocate).
    pub fn fill(&mut self, addr: u64, write: bool) -> FillOutcome {
        self.tick += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let line_bytes = self.line_bytes as u64;
        let num_sets = self.num_sets as u64;
        let range = self.set_range(set);
        let tick = self.tick;

        // If the block is already present just update it.
        for line in &mut self.lines[range.clone()] {
            if line.valid && line.tag == tag {
                line.lru = tick;
                if write {
                    line.dirty = true;
                }
                return FillOutcome::default();
            }
        }

        // Choose a victim: an invalid way if available, otherwise LRU.
        let victim_idx = {
            let lines = &self.lines[range.clone()];
            match lines.iter().position(|l| !l.valid) {
                Some(i) => i,
                None => {
                    let (i, _) = lines
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.lru)
                        .expect("assoc >= 1");
                    i
                }
            }
        };
        let victim = &mut self.lines[range.start + victim_idx];
        let mut outcome = FillOutcome::default();
        if victim.valid {
            let victim_addr = (victim.tag * num_sets + set as u64) * line_bytes;
            if victim.dirty {
                outcome.writeback = Some(victim_addr);
                self.stats.writebacks += 1;
            } else {
                outcome.evicted = Some(victim_addr);
            }
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: tick,
        };
        outcome
    }

    /// Invalidate the line containing `addr` if present.  Returns the block
    /// address if the line was dirty (the caller is responsible for pushing
    /// the data to the next level, as required by the exclusive-bit +
    /// inclusion coherence policy of paper §3.2).
    pub fn invalidate(&mut self, addr: u64) -> Option<u64> {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let line_bytes = self.line_bytes as u64;
        let num_sets = self.num_sets as u64;
        let range = self.set_range(set);
        for line in &mut self.lines[range] {
            if line.valid && line.tag == tag {
                line.valid = false;
                self.stats.invalidations += 1;
                if line.dirty {
                    line.dirty = false;
                    return Some((tag * num_sets + set as u64) * line_bytes);
                }
                return None;
            }
        }
        None
    }

    /// Number of valid lines currently held (used by tests).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 32-byte lines = 256 bytes.
        Cache::new("test", 256, 2, 32)
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small_cache();
        assert_eq!(c.access(0x100, false), LookupResult::Miss);
        c.fill(0x100, false);
        assert_eq!(c.access(0x100, false), LookupResult::Hit);
        assert_eq!(
            c.access(0x11f, false),
            LookupResult::Hit,
            "same 32-byte line"
        );
        assert_eq!(c.access(0x120, false), LookupResult::Miss, "next line");
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache();
        // Three blocks mapping to the same set (set stride = 4 lines * 32 B = 128 B).
        let a = 0x0;
        let b = 0x80;
        let d = 0x100;
        c.fill(a, false);
        c.fill(b, false);
        // Touch `a` so `b` becomes LRU.
        assert_eq!(c.access(a, false), LookupResult::Hit);
        c.fill(d, false);
        assert_eq!(c.probe(a), LookupResult::Hit);
        assert_eq!(c.probe(b), LookupResult::Miss);
        assert_eq!(c.probe(d), LookupResult::Hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        c.fill(0x0, true); // dirty
        c.fill(0x80, false);
        let out = c.fill(0x100, false); // evicts LRU = 0x0 (dirty)
        assert_eq!(out.writeback, Some(0x0));
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn invalidate_returns_dirty_address() {
        let mut c = small_cache();
        c.fill(0x40, true);
        assert_eq!(c.invalidate(0x40), Some(0x40));
        assert_eq!(c.probe(0x40), LookupResult::Miss);
        // Invalidating a clean or absent line returns None.
        c.fill(0x40, false);
        assert_eq!(c.invalidate(0x40), None);
        assert_eq!(c.invalidate(0xF00), None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_cache();
        c.fill(0x200, false);
        assert_eq!(c.access(0x200, true), LookupResult::Hit);
        // Eviction of that line must now report a writeback.
        c.fill(0x280, false);
        let out = c.fill(0x300, false);
        assert!(
            out.writeback == Some(0x200) || out.evicted == Some(0x200) || out.writeback.is_some()
        );
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = small_cache();
        assert_eq!(c.stats.hit_rate(), 1.0);
        c.access(0x0, false);
        c.fill(0x0, false);
        c.access(0x0, false);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_is_rejected() {
        Cache::new("bad", 100, 3, 24);
    }
}
