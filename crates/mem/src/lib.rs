//! # vmv-mem — the memory hierarchy of the Vector-µSIMD-VLIW processor
//!
//! A timing model of the three-level memory system described in paper §3.2
//! and §4.2: an L1 data cache for scalar/µSIMD accesses, a two-bank
//! interleaved L2 *vector cache* with a wide port that vector accesses reach
//! directly (bypassing the L1), an L3 cache, and main memory.  Includes the
//! exclusive-bit + inclusion coherence between the L1 and the vector cache,
//! and both the *perfect* and *realistic* memory modes used in the paper's
//! evaluation (Fig. 5a vs 5b).

#![forbid(unsafe_code)]

pub mod cache;
pub mod hierarchy;
pub mod lines;
pub mod vector_cache;

pub use cache::{Cache, CacheStats, FillOutcome, LookupResult};
pub use hierarchy::{
    tag_equivalent_configs, AccessEcho, AccessKind, AccessTiming, EchoPricer, MemStats,
    MemoryHierarchy, MemoryModel, ServedBy, SharedAccessScratch,
};
pub use lines::LineWalk;
pub use vector_cache::{VectorAccessOutcome, VectorCache};
