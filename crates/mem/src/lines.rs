//! Closed-form enumeration of the cache lines touched by a constant-stride
//! vector access.
//!
//! Every dynamic vector operation needs the set of distinct cache lines its
//! elements cover — once per line size that cares (L1 coherence
//! invalidations, L2 tags).  The original implementation collected that set
//! into a freshly allocated `Vec<u64>` with an O(elems²) `contains` dedup on
//! every access, twice per operation.  For constant strides the set has a
//! closed form:
//!
//! * `|stride| <= line`: consecutive element spans overlap or abut every
//!   line between the first and the last — the set is the contiguous range
//!   of lines covering `[lo, hi]`.
//! * `stride > line`, `stride % line == 0`, no element straddles a line
//!   boundary: each element sits on its own line and the set is the
//!   arithmetic sequence `block(base) + i * stride`.
//!
//! Everything else (line-straddling odd strides, negative far strides,
//! address-space wraparound) falls back to the naive per-element walk into a
//! caller-provided scratch buffer that is cleared, never reallocated.
//!
//! [`collect_naive`] is retained verbatim as the fallback *and* as the
//! reference the property tests compare the closed forms against.

/// Size in bytes of one vector element (the ISA's 64-bit words).
pub const ELEM_BYTES: u64 = 8;

/// Closed-form description of the touched-line set of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineWalk {
    /// Every line between `first` and `last` (inclusive, stepping by
    /// `line`) is touched, in ascending order.
    Contiguous { first: u64, last: u64, line: u64 },
    /// Exactly `count` distinct lines `first + i * step`, in element order.
    Arithmetic { first: u64, step: u64, count: u32 },
}

impl LineWalk {
    /// Number of distinct lines the walk visits.
    #[inline]
    pub fn count(&self) -> u32 {
        match *self {
            LineWalk::Contiguous { first, last, line } => {
                ((last - first) >> line.trailing_zeros()) as u32 + 1
            }
            LineWalk::Arithmetic { count, .. } => count,
        }
    }

    /// Visit every touched line block address in walk order.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(u64)) {
        match *self {
            LineWalk::Contiguous { first, last, line } => {
                let mut blk = first;
                loop {
                    f(blk);
                    if blk >= last {
                        break;
                    }
                    blk += line;
                }
            }
            LineWalk::Arithmetic { first, step, count } => {
                let mut blk = first;
                for _ in 0..count {
                    f(blk);
                    blk = blk.wrapping_add(step);
                }
            }
        }
    }
}

/// `line` is a power of two everywhere in the hierarchy, so block rounding
/// and offset extraction are plain masks.
#[inline]
fn block(addr: u64, line: u64) -> u64 {
    debug_assert!(line.is_power_of_two());
    addr & !(line - 1)
}

/// Byte span `[lo, hi]` covered by the access, or `None` when the address
/// arithmetic would leave the 64-bit address space (the naive walk then
/// reproduces the legacy wrapping behaviour exactly).
#[inline]
pub fn span(base: u64, stride: i64, elems: u32) -> Option<(u64, u64)> {
    let elems = elems.max(1) as i128;
    let first = base as i128;
    let last = first + stride as i128 * (elems - 1);
    let (lo, hi) = if first <= last {
        (first, last)
    } else {
        (last, first)
    };
    let hi = hi + (ELEM_BYTES as i128 - 1);
    if lo < 0 || hi > u64::MAX as i128 {
        None
    } else {
        Some((lo as u64, hi as u64))
    }
}

/// Classify the touched-line set of an access of `elems` 64-bit elements at
/// `base`, `stride` bytes apart, against a cache with `line`-byte lines.
/// Returns `None` when no closed form applies and the caller must fall back
/// to [`collect_naive`].
pub fn classify(base: u64, stride: i64, elems: u32, line: u64) -> Option<LineWalk> {
    debug_assert!(line.is_power_of_two());
    let elems = elems.max(1);
    let (lo, hi) = span(base, stride, elems)?;
    if elems == 1 || stride == 0 || stride.unsigned_abs() <= line {
        return Some(LineWalk::Contiguous {
            first: block(lo, line),
            last: block(hi, line),
            line,
        });
    }
    // Far positive stride: one line per element when the stride is
    // line-aligned and no element straddles a boundary.  (Far negative
    // strides are vanishingly rare in real programs — not worth a mirrored
    // cursor; they take the naive walk.)
    if stride > 0
        && stride as u64 & (line - 1) == 0
        && (base & (line - 1)) + (ELEM_BYTES - 1) < line
    {
        return Some(LineWalk::Arithmetic {
            first: block(base, line),
            step: stride as u64,
            count: elems,
        });
    }
    None
}

/// The naive per-element walk: for each element's `[a, a + 7]` span, push
/// the line blocks of both endpoints, deduplicating against everything
/// collected so far.  `out` is cleared first, never reallocated once grown.
///
/// This is bit-for-bit the legacy collection loop — the fallback for
/// irregular strides and the oracle the closed forms are tested against.
pub fn collect_naive(base: u64, stride: i64, elems: u32, line: u64, out: &mut Vec<u64>) {
    out.clear();
    for i in 0..elems.max(1) {
        let a = (base as i64).wrapping_add(stride.wrapping_mul(i as i64)) as u64;
        for cand in [block(a, line), block(a.wrapping_add(ELEM_BYTES - 1), line)] {
            if !out.contains(&cand) {
                out.push(cand);
            }
        }
    }
}

/// Collect the touched-line set through the closed form when one applies,
/// through the naive walk otherwise.  The scratch buffer is cleared, not
/// reallocated.  Returns the number of distinct lines.
pub fn collect(base: u64, stride: i64, elems: u32, line: u64, out: &mut Vec<u64>) -> u32 {
    match classify(base, stride, elems, line) {
        Some(walk) => {
            out.clear();
            walk.for_each(|blk| out.push(blk));
            walk.count()
        }
        None => {
            collect_naive(base, stride, elems, line, out);
            out.len() as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed_form(base: u64, stride: i64, elems: u32, line: u64) -> Option<Vec<u64>> {
        classify(base, stride, elems, line).map(|w| {
            let mut v = Vec::new();
            w.for_each(|b| v.push(b));
            assert_eq!(v.len() as u32, w.count());
            v
        })
    }

    fn naive(base: u64, stride: i64, elems: u32, line: u64) -> Vec<u64> {
        let mut v = Vec::new();
        collect_naive(base, stride, elems, line, &mut v);
        v
    }

    #[test]
    fn unit_stride_is_a_contiguous_range() {
        let walk = classify(0x1000, 8, 16, 64).unwrap();
        assert_eq!(
            walk,
            LineWalk::Contiguous {
                first: 0x1000,
                last: 0x1040,
                line: 64
            }
        );
        assert_eq!(
            closed_form(0x1000, 8, 16, 64).unwrap(),
            naive(0x1000, 8, 16, 64)
        );
    }

    #[test]
    fn line_aligned_far_stride_is_arithmetic() {
        let walk = classify(0x2000, 256, 8, 64).unwrap();
        assert_eq!(
            walk,
            LineWalk::Arithmetic {
                first: 0x2000,
                step: 256,
                count: 8
            }
        );
        assert_eq!(
            closed_form(0x2000, 256, 8, 64).unwrap(),
            naive(0x2000, 256, 8, 64)
        );
    }

    #[test]
    fn straddling_far_stride_falls_back() {
        // base 0x103C: every element straddles a 64-byte boundary.
        assert!(classify(0x103C, 256, 4, 64).is_none());
        // Non-line-multiple stride.
        assert!(classify(0x1000, 200, 4, 64).is_none());
        // Far negative stride.
        assert!(classify(0x10000, -256, 4, 64).is_none());
    }

    #[test]
    fn negative_small_stride_is_contiguous() {
        let cf = closed_form(0x1080, -8, 16, 64).unwrap();
        let nv = naive(0x1080, -8, 16, 64);
        let mut nv_sorted = nv.clone();
        nv_sorted.sort_unstable();
        nv_sorted.dedup();
        assert_eq!(cf, nv_sorted, "same set (ascending)");
    }

    #[test]
    fn wraparound_is_rejected() {
        assert!(classify(u64::MAX - 16, 8, 16, 64).is_none());
        assert!(classify(8, -8, 16, 64).is_none());
        // The naive walk still terminates and dedups.
        assert!(!naive(u64::MAX - 16, 8, 16, 64).is_empty());
    }

    #[test]
    fn collect_matches_naive_on_regular_shapes() {
        for (base, stride, elems) in [
            (0x0u64, 8i64, 16u32),
            (0x103C, 8, 16),
            (0x1000, 0, 4),
            (0x1000, 64, 7),
            (0x1234, 16, 16),
            (0x4000, 640, 16),
            (0x4000, 4096, 16),
        ] {
            let mut scratch = Vec::new();
            let n = collect(base, stride, elems, 64, &mut scratch);
            assert_eq!(n as usize, scratch.len());
            let mut expect = naive(base, stride, elems, 64);
            let mut got = scratch.clone();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "base={base:#x} stride={stride} elems={elems}");
        }
    }
}
