//! The two-bank interleaved L2 *vector cache* (paper §3.2, after [27]).
//!
//! Stride-one vector requests are served by reading two whole cache lines
//! (one per bank); an interchange switch, a shifter and mask logic align the
//! data, so the access proceeds at up to `B` elements per cycle where `B` is
//! the width of the L2 port in 64-bit elements.  Any other stride is served
//! at one element per cycle.  Scalar refills from the L1 also hit this cache
//! (it is the second level of the hierarchy for every access).
//!
//! The touched-line set of a vector request is enumerated through the
//! closed forms of [`crate::lines`]; only irregular strides fall back to a
//! per-element walk into a reusable scratch buffer.  No allocation happens
//! per access once the scratch has grown to its working size.

use crate::cache::{Cache, LookupResult};
use crate::lines;

/// Outcome of presenting one vector request to the vector cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorAccessOutcome {
    /// Number of distinct cache lines touched by the request.
    pub lines_touched: u32,
    /// Number of those lines that missed and had to be fetched from the
    /// next level.
    pub lines_missed: u32,
    /// Cycles needed to transfer all elements once the data is available
    /// (`ceil(elems / port_elems)` at stride one, `elems` otherwise).
    pub transfer_cycles: u32,
    /// Whether the request had unit stride (8 bytes between consecutive
    /// 64-bit elements).
    pub unit_stride: bool,
    /// Dirty lines written back during the fills.
    pub writebacks: u32,
}

/// The L2 vector cache: a set-associative cache plus the bank/port model.
#[derive(Debug, Clone)]
pub struct VectorCache {
    cache: Cache,
    banks: usize,
    port_elems: u32,
    /// Reusable touched-line scratch for irregular strides (cleared per
    /// access, never reallocated once grown).
    scratch: Vec<u64>,
    /// Vector-access statistics (scalar refills are counted in the inner
    /// cache statistics).
    pub vector_accesses: u64,
    pub unit_stride_accesses: u64,
    pub strided_accesses: u64,
    pub bank_line_pairs: u64,
}

impl VectorCache {
    pub fn new(
        size_bytes: usize,
        assoc: usize,
        line_bytes: usize,
        banks: usize,
        port_elems: u32,
    ) -> Self {
        assert!(banks >= 1);
        VectorCache {
            cache: Cache::new("L2-vector", size_bytes, assoc, line_bytes),
            banks,
            port_elems: port_elems.max(1),
            scratch: Vec::with_capacity(32),
            vector_accesses: 0,
            unit_stride_accesses: 0,
            strided_accesses: 0,
            bank_line_pairs: 0,
        }
    }

    /// Access the underlying cache for a scalar refill coming from the L1.
    pub fn scalar_access(&mut self, addr: u64, write: bool) -> LookupResult {
        self.cache.access(addr, write)
    }

    /// Fill a line (after a miss was serviced by the next level).
    pub fn fill(&mut self, addr: u64, write: bool) -> crate::cache::FillOutcome {
        self.cache.fill(addr, write)
    }

    /// Tag lookup of one line of a vector request (updates LRU/statistics;
    /// the caller owns the fill policy).  Used by the hierarchy's fused
    /// single-pass walk.
    #[inline]
    pub fn access_line(&mut self, blk: u64, write: bool) -> LookupResult {
        self.cache.access(blk, write)
    }

    /// Line size of the underlying cache in bytes.
    pub fn line_bytes(&self) -> usize {
        self.cache.line_bytes()
    }

    /// Probe the underlying cache without touching LRU state or statistics.
    pub fn probe(&self, addr: u64) -> LookupResult {
        self.cache.probe(addr)
    }

    /// Bank index of a byte address (lines are interleaved across banks).
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.cache.line_bytes() as u64) % self.banks as u64) as usize
    }

    /// Statistics of the underlying cache.
    pub fn stats(&self) -> crate::cache::CacheStats {
        self.cache.stats
    }

    /// Element-transfer cycles of a request once its data is available.
    #[inline]
    pub fn transfer_cycles(&self, unit_stride: bool, elems: u32) -> u32 {
        if unit_stride {
            elems.max(1).div_ceil(self.port_elems)
        } else {
            elems.max(1)
        }
    }

    /// Account one vector request in the access counters.  `lines_touched`
    /// feeds the stride-one bank-pair statistic (paper §3.2: stride-one
    /// requests are served as pairs of whole lines, one per bank).
    pub fn record_vector_access(&mut self, unit_stride: bool, lines_touched: u32) {
        self.vector_accesses += 1;
        if unit_stride {
            self.unit_stride_accesses += 1;
            self.bank_line_pairs += (lines_touched as usize).div_ceil(self.banks) as u64;
        } else {
            self.strided_accesses += 1;
        }
    }

    /// Present a vector request: `elems` 64-bit elements starting at `base`,
    /// separated by `stride_bytes`.  Updates tags/LRU and returns the
    /// touched/missed line counts plus the element-transfer time.
    ///
    /// Missed lines are filled immediately from the (unmodelled) next
    /// level; the full hierarchy instead drives the per-line walk itself via
    /// [`VectorCache::access_line`] so it can charge the L3/memory latency
    /// of each actual missed line address.
    pub fn vector_access(
        &mut self,
        base: u64,
        stride_bytes: i64,
        elems: u32,
        write: bool,
    ) -> VectorAccessOutcome {
        let elems = elems.max(1);
        let unit_stride = stride_bytes == lines::ELEM_BYTES as i64;
        let line = self.cache.line_bytes() as u64;

        let mut missed = 0u32;
        let mut writebacks = 0u32;
        let mut touched = 0u32;
        let mut touch = |cache: &mut Cache, blk: u64| {
            touched += 1;
            if cache.access(blk, write) == LookupResult::Miss {
                missed += 1;
                if cache.fill(blk, write).writeback.is_some() {
                    writebacks += 1;
                }
            }
        };
        match lines::classify(base, stride_bytes, elems, line) {
            Some(walk) => walk.for_each(|blk| touch(&mut self.cache, blk)),
            None => {
                let mut scratch = std::mem::take(&mut self.scratch);
                lines::collect_naive(base, stride_bytes, elems, line, &mut scratch);
                for &blk in &scratch {
                    touch(&mut self.cache, blk);
                }
                self.scratch = scratch;
            }
        }

        self.record_vector_access(unit_stride, touched);
        VectorAccessOutcome {
            lines_touched: touched,
            lines_missed: missed,
            transfer_cycles: self.transfer_cycles(unit_stride, elems),
            unit_stride,
            writebacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VectorCache {
        // 256 KB, 4-way, 64-byte lines, 2 banks, 4-element port.
        VectorCache::new(256 * 1024, 4, 64, 2, 4)
    }

    #[test]
    fn unit_stride_transfer_rate_is_port_width() {
        let mut c = vc();
        let out = c.vector_access(0x1000, 8, 16, false);
        assert!(out.unit_stride);
        assert_eq!(out.transfer_cycles, 4); // 16 elements / 4 per cycle
                                            // 16 * 8 = 128 bytes = 2 lines of 64 bytes (aligned base).
        assert_eq!(out.lines_touched, 2);
        assert_eq!(out.lines_missed, 2);

        // Second access to the same data hits.
        let out2 = c.vector_access(0x1000, 8, 16, false);
        assert_eq!(out2.lines_missed, 0);
    }

    #[test]
    fn non_unit_stride_transfers_one_element_per_cycle() {
        let mut c = vc();
        let out = c.vector_access(0x2000, 256, 8, false);
        assert!(!out.unit_stride);
        assert_eq!(out.transfer_cycles, 8);
        assert_eq!(out.lines_touched, 8); // each element on its own line
    }

    #[test]
    fn consecutive_lines_alternate_banks() {
        let c = vc();
        assert_ne!(c.bank_of(0x0), c.bank_of(0x40));
        assert_eq!(c.bank_of(0x0), c.bank_of(0x80));
    }

    #[test]
    fn straddling_elements_touch_both_lines() {
        let mut c = vc();
        // base 0x103C: first element covers 0x103C..0x1044, straddling the
        // 0x1000 and 0x1040 lines.
        let out = c.vector_access(0x103C, 8, 1, false);
        assert_eq!(out.lines_touched, 2);
    }

    #[test]
    fn irregular_stride_uses_the_scratch_walk() {
        let mut c = vc();
        // Stride 200 is neither <= the line size nor line-aligned: the
        // naive fallback must still dedup correctly.  Elements at 0, 200,
        // 400, 600 with 64-byte lines touch lines {0, 192, 384, 576} plus
        // the straddle of 600..607 (also 576): 4 distinct lines... compute
        // via the reference walk to stay honest.
        let mut expect = Vec::new();
        crate::lines::collect_naive(0x0, 200, 4, 64, &mut expect);
        let out = c.vector_access(0x0, 200, 4, false);
        assert_eq!(out.lines_touched as usize, expect.len());
        // All lines were cold.
        assert_eq!(out.lines_missed, out.lines_touched);
    }

    #[test]
    fn stats_track_access_kinds() {
        let mut c = vc();
        c.vector_access(0x0, 8, 4, false);
        c.vector_access(0x0, 64, 4, false);
        c.vector_access(0x0, 8, 4, true);
        assert_eq!(c.vector_accesses, 3);
        assert_eq!(c.unit_stride_accesses, 2);
        assert_eq!(c.strided_accesses, 1);
    }
}
