//! The operation set of the three ISAs under study:
//!
//! * the scalar VLIW base ISA (HPL-PD-like integer/memory/branch operations),
//! * the µSIMD extension (64-bit packed sub-word operations, comparable to
//!   the integer subset of SSE / MMX referenced in paper §4.2),
//! * the Vector-µSIMD extension (MOM-like vector operations where every
//!   element operation is an MMX-like packed operation, plus packed
//!   accumulators and the `VL`/`VS` control registers, paper §3.1).
//!
//! Each opcode carries static metadata used by the scheduler (functional
//! unit class, latency class, implicit control-register reads) and by the
//! simulator (memory behaviour, micro-operation accounting).

use crate::packed::{Elem, Sat, Sign};
use crate::reg::RegClass;

/// Width of a scalar memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    B1,
    B2,
    B4,
    B8,
}

impl MemWidth {
    pub const fn bytes(self) -> usize {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// Branch condition for conditional branches (compare-and-branch form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Le,
    Gt,
}

/// Functional-unit class an operation issues to.  The per-configuration
/// resource counts come from Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU / branch / control operations (uses an integer unit).
    Int,
    /// µSIMD packed operations (uses a µSIMD unit, or a vector unit with
    /// vector length 1 on the Vector configurations).
    Simd,
    /// Vector arithmetic and accumulator operations (uses a vector unit).
    Vector,
    /// Scalar / µSIMD memory operations (uses an L1 data-cache port).
    MemL1,
    /// Vector memory operations (bypass L1; use the wide L2 vector-cache
    /// port, paper §3.2).
    MemL2,
}

/// Latency class of an operation.  The concrete cycle counts for each class
/// live in the machine configuration (`vmv-machine`), mirroring the way
/// HPL-PD machine descriptions separate opcode → latency-class → cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatClass {
    /// Single-cycle integer operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (rare; long latency).
    IntDiv,
    /// Scalar load (L1 hit assumed by the compiler).
    Load,
    /// Scalar / µSIMD store.
    Store,
    /// Branch.
    Branch,
    /// µSIMD ALU operation.
    SimdAlu,
    /// µSIMD multiply.
    SimdMul,
    /// Vector ALU sub-operation flow latency.
    VecAlu,
    /// Vector multiply / accumulator sub-operation flow latency.
    VecMul,
    /// Vector memory operation (L2 vector-cache hit assumed).
    VecMem,
    /// Zero-latency control (set VL / VS — handled as a 1-cycle int op).
    Ctrl,
}

/// The complete operation set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // ----------------------------------------------------------------- scalar
    /// No operation.
    Nop,
    /// Stop program execution.
    Halt,
    /// Load immediate into an integer register.
    MovI,
    /// Copy integer register.
    Mov,
    IAdd,
    ISub,
    IMul,
    IDiv,
    IRem,
    IAnd,
    IOr,
    IXor,
    IShl,
    IShr,
    ISra,
    /// Set-less-than (signed): dst = (a < b) as 0/1.
    ISlt,
    /// Set-less-than (unsigned).
    ISltu,
    /// Set-equal.
    ISeq,
    IMin,
    IMax,
    /// Absolute value.
    IAbs,
    /// Scalar load: dst ← mem[src0 + imm].
    Load(MemWidth, Sign),
    /// Scalar store: mem[src0 + imm] ← src1.
    Store(MemWidth),
    /// Conditional branch: if (src0 cond src1) goto target.
    Br(BrCond),
    /// Unconditional jump to target.
    Jump,

    // ----------------------------------------------------------------- µSIMD
    /// Load a 64-bit packed word into a µSIMD register.
    PLoad,
    /// Store a 64-bit packed word from a µSIMD register.
    PStore,
    /// Copy µSIMD register.
    PMov,
    /// Move an integer register into a µSIMD register (no broadcast).
    MovIntToSimd,
    /// Move a µSIMD register into an integer register.
    MovSimdToInt,
    /// Broadcast the low element of an integer register into every lane.
    PSplat(Elem),
    /// Packed add.
    PAdd(Elem, Sat),
    /// Packed subtract.
    PSub(Elem, Sat),
    /// Packed multiply, low half of products.
    PMulLo(Elem),
    /// Packed signed multiply, high half of products.
    PMulHi(Elem),
    /// Multiply 16-bit lanes, add adjacent pairs into 32-bit lanes.
    PMAdd,
    /// Multiply even 16-bit lanes into full 32-bit products.
    PMulWidenEven(Sign),
    /// Multiply odd 16-bit lanes into full 32-bit products.
    PMulWidenOdd(Sign),
    /// Packed unsigned average with rounding.
    PAvg(Elem),
    PMin(Elem, Sign),
    PMax(Elem, Sign),
    /// Packed absolute difference of unsigned elements.
    PAbsDiff(Elem),
    /// Sum of absolute differences of 8 unsigned bytes → scalar result in a
    /// µSIMD register (like `psadbw`).
    PSad,
    PAnd,
    POr,
    PXor,
    PAndNot,
    /// Packed shifts by immediate amount.
    PShl(Elem),
    PShrL(Elem),
    PShrA(Elem),
    /// Pack to the next narrower width with saturation (src width given).
    PPack(Elem, Sign),
    /// Interleave low/high halves of two registers.
    PUnpackLo(Elem),
    PUnpackHi(Elem),
    /// Widen the low/high half of the lanes to the next wider width.
    PWidenLo(Elem, Sign),
    PWidenHi(Elem, Sign),
    PCmpEq(Elem),
    PCmpGt(Elem),
    /// Extract lane `imm` into an integer register (zero-extended).
    PExtract(Elem),
    /// Insert the low bits of an integer register into lane `imm`.
    PInsert(Elem),

    // ------------------------------------------------------------ vector ISA
    /// Set the vector-length register from an immediate or integer register.
    SetVL,
    /// Set the vector-stride register (in bytes) from an immediate or
    /// integer register.
    SetVS,
    /// Vector load: VL 64-bit words from `src0 + imm`, stride `VS` bytes
    /// between consecutive words.
    VLoad,
    /// Vector store.
    VStore,
    /// Copy vector register.
    VMov,
    /// Broadcast an integer register into every lane of every word.
    VSplat(Elem),
    VAdd(Elem, Sat),
    VSub(Elem, Sat),
    VMulLo(Elem),
    VMulHi(Elem),
    VMAdd,
    VMulWidenEven(Sign),
    VMulWidenOdd(Sign),
    VAvg(Elem),
    VMin(Elem, Sign),
    VMax(Elem, Sign),
    VAbsDiff(Elem),
    VAnd,
    VOr,
    VXor,
    VShl(Elem),
    VShrL(Elem),
    VShrA(Elem),
    VPack(Elem, Sign),
    VUnpackLo(Elem),
    VUnpackHi(Elem),
    VWidenLo(Elem, Sign),
    VWidenHi(Elem, Sign),
    VCmpEq(Elem),
    VCmpGt(Elem),
    /// Extract 64-bit word `imm` of a vector register into a µSIMD register.
    VExtract,
    /// Insert a µSIMD register into word `imm` of a vector register.
    VInsert,

    // ---------------------------------------------------------- accumulators
    /// Clear a packed accumulator.
    AccClear,
    /// Accumulate the per-byte-lane absolute differences of two vector
    /// registers over the whole vector length (the `SAD` of Fig. 4).
    VSadAcc,
    /// Multiply-accumulate of signed 16-bit lanes over the whole vector
    /// length: `acc[lane] += Σ_word a[word][lane] * b[word][lane]`.
    VMacAcc,
    /// Per-lane add-accumulate of signed 16-bit lanes over the vector.
    VAddAcc,
    /// Reduce a packed accumulator to a scalar sum in an integer register.
    AccReduce,
    /// Shift every sub-accumulator right by `imm` (arithmetic), saturate to
    /// signed 16-bit and pack the 4 halfword lanes into a µSIMD register.
    AccPackShrH,
}

impl Opcode {
    /// Functional unit class this operation issues to.
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            Nop | Halt | MovI | Mov | IAdd | ISub | IMul | IDiv | IRem | IAnd | IOr | IXor
            | IShl | IShr | ISra | ISlt | ISltu | ISeq | IMin | IMax | IAbs | Br(_) | Jump
            | SetVL | SetVS => FuClass::Int,
            Load(..) | Store(..) | PLoad | PStore => FuClass::MemL1,
            VLoad | VStore => FuClass::MemL2,
            PMov | MovIntToSimd | MovSimdToInt | PSplat(_) | PAdd(..) | PSub(..) | PMulLo(_)
            | PMulHi(_) | PMAdd | PMulWidenEven(_) | PMulWidenOdd(_) | PAvg(_) | PMin(..)
            | PMax(..) | PAbsDiff(_) | PSad | PAnd | POr | PXor | PAndNot | PShl(_) | PShrL(_)
            | PShrA(_) | PPack(..) | PUnpackLo(_) | PUnpackHi(_) | PWidenLo(..) | PWidenHi(..)
            | PCmpEq(_) | PCmpGt(_) | PExtract(_) | PInsert(_) => FuClass::Simd,
            VMov | VSplat(_) | VAdd(..) | VSub(..) | VMulLo(_) | VMulHi(_) | VMAdd
            | VMulWidenEven(_) | VMulWidenOdd(_) | VAvg(_) | VMin(..) | VMax(..) | VAbsDiff(_)
            | VAnd | VOr | VXor | VShl(_) | VShrL(_) | VShrA(_) | VPack(..) | VUnpackLo(_)
            | VUnpackHi(_) | VWidenLo(..) | VWidenHi(..) | VCmpEq(_) | VCmpGt(_) | VExtract
            | VInsert | AccClear | VSadAcc | VMacAcc | VAddAcc | AccReduce | AccPackShrH => {
                FuClass::Vector
            }
        }
    }

    /// Latency class of this operation.
    pub fn lat_class(self) -> LatClass {
        use Opcode::*;
        match self {
            Nop | Halt | MovI | Mov | IAdd | ISub | IAnd | IOr | IXor | IShl | IShr | ISra
            | ISlt | ISltu | ISeq | IMin | IMax | IAbs => LatClass::IntAlu,
            IMul => LatClass::IntMul,
            IDiv | IRem => LatClass::IntDiv,
            Load(..) | PLoad => LatClass::Load,
            Store(..) | PStore => LatClass::Store,
            Br(_) | Jump => LatClass::Branch,
            SetVL | SetVS => LatClass::Ctrl,
            PMulLo(_) | PMulHi(_) | PMAdd | PMulWidenEven(_) | PMulWidenOdd(_) => LatClass::SimdMul,
            PMov | MovIntToSimd | MovSimdToInt | PSplat(_) | PAdd(..) | PSub(..) | PAvg(_)
            | PMin(..) | PMax(..) | PAbsDiff(_) | PSad | PAnd | POr | PXor | PAndNot | PShl(_)
            | PShrL(_) | PShrA(_) | PPack(..) | PUnpackLo(_) | PUnpackHi(_) | PWidenLo(..)
            | PWidenHi(..) | PCmpEq(_) | PCmpGt(_) | PExtract(_) | PInsert(_) => LatClass::SimdAlu,
            VLoad | VStore => LatClass::VecMem,
            VMulLo(_) | VMulHi(_) | VMAdd | VMulWidenEven(_) | VMulWidenOdd(_) | VMacAcc => {
                LatClass::VecMul
            }
            VMov | VSplat(_) | VAdd(..) | VSub(..) | VAvg(_) | VMin(..) | VMax(..)
            | VAbsDiff(_) | VAnd | VOr | VXor | VShl(_) | VShrL(_) | VShrA(_) | VPack(..)
            | VUnpackLo(_) | VUnpackHi(_) | VWidenLo(..) | VWidenHi(..) | VCmpEq(_) | VCmpGt(_)
            | VExtract | VInsert | AccClear | VSadAcc | VAddAcc | AccReduce | AccPackShrH => {
                LatClass::VecAlu
            }
        }
    }

    /// True for every memory operation (scalar, µSIMD or vector).
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Opcode::Load(..)
                | Opcode::Store(..)
                | Opcode::PLoad
                | Opcode::PStore
                | Opcode::VLoad
                | Opcode::VStore
        )
    }

    /// True for memory reads.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Load(..) | Opcode::PLoad | Opcode::VLoad)
    }

    /// True for memory writes.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Store(..) | Opcode::PStore | Opcode::VStore)
    }

    /// True for vector memory operations (which bypass the L1 and use the
    /// wide L2 vector-cache port).
    pub fn is_vector_memory(self) -> bool {
        matches!(self, Opcode::VLoad | Opcode::VStore)
    }

    /// True for control transfers.
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Br(_) | Opcode::Jump)
    }

    /// True for conditional branches.
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Br(_))
    }

    /// True for every operation of the vector extension (vector register,
    /// accumulator or control-register operations).
    pub fn is_vector_op(self) -> bool {
        matches!(self.fu_class(), FuClass::Vector | FuClass::MemL2)
            || matches!(self, Opcode::SetVL | Opcode::SetVS)
    }

    /// True for operations whose behaviour depends on the vector-length
    /// register (every vector compute / memory / accumulator operation).
    pub fn reads_vl(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            VLoad
                | VStore
                | VMov
                | VSplat(_)
                | VAdd(..)
                | VSub(..)
                | VMulLo(_)
                | VMulHi(_)
                | VMAdd
                | VMulWidenEven(_)
                | VMulWidenOdd(_)
                | VAvg(_)
                | VMin(..)
                | VMax(..)
                | VAbsDiff(_)
                | VAnd
                | VOr
                | VXor
                | VShl(_)
                | VShrL(_)
                | VShrA(_)
                | VPack(..)
                | VUnpackLo(_)
                | VUnpackHi(_)
                | VWidenLo(..)
                | VWidenHi(..)
                | VCmpEq(_)
                | VCmpGt(_)
                | VSadAcc
                | VMacAcc
                | VAddAcc
        )
    }

    /// True for operations that read the vector-stride register.
    pub fn reads_vs(self) -> bool {
        matches!(self, Opcode::VLoad | Opcode::VStore)
    }

    /// Register class produced by this operation (None for stores, branches
    /// and other operations with no register destination).
    pub fn dst_class(self) -> Option<RegClass> {
        use Opcode::*;
        match self {
            Nop | Halt | Store(..) | PStore | VStore | Br(_) | Jump => None,
            SetVL | SetVS => Some(RegClass::Ctrl),
            MovI | Mov | IAdd | ISub | IMul | IDiv | IRem | IAnd | IOr | IXor | IShl | IShr
            | ISra | ISlt | ISltu | ISeq | IMin | IMax | IAbs | Load(..) | MovSimdToInt
            | PExtract(_) | AccReduce => Some(RegClass::Int),
            PLoad | PMov | MovIntToSimd | PSplat(_) | PAdd(..) | PSub(..) | PMulLo(_)
            | PMulHi(_) | PMAdd | PMulWidenEven(_) | PMulWidenOdd(_) | PAvg(_) | PMin(..)
            | PMax(..) | PAbsDiff(_) | PSad | PAnd | POr | PXor | PAndNot | PShl(_) | PShrL(_)
            | PShrA(_) | PPack(..) | PUnpackLo(_) | PUnpackHi(_) | PWidenLo(..) | PWidenHi(..)
            | PCmpEq(_) | PCmpGt(_) | PInsert(_) | VExtract | AccPackShrH => Some(RegClass::Simd),
            VLoad | VMov | VSplat(_) | VAdd(..) | VSub(..) | VMulLo(_) | VMulHi(_) | VMAdd
            | VMulWidenEven(_) | VMulWidenOdd(_) | VAvg(_) | VMin(..) | VMax(..) | VAbsDiff(_)
            | VAnd | VOr | VXor | VShl(_) | VShrL(_) | VShrA(_) | VPack(..) | VUnpackLo(_)
            | VUnpackHi(_) | VWidenLo(..) | VWidenHi(..) | VCmpEq(_) | VCmpGt(_) | VInsert => {
                Some(RegClass::Vec)
            }
            AccClear | VSadAcc | VMacAcc | VAddAcc => Some(RegClass::Acc),
        }
    }

    /// Number of architectural micro-operations performed by one dynamic
    /// instance of this operation, given the active vector length `vl`
    /// (ignored for non-vector operations).
    ///
    /// * a scalar operation counts as 1 micro-operation;
    /// * a µSIMD operation counts as many micro-operations as packed lanes it
    ///   processes (8 / 4 / 2);
    /// * a vector operation counts `vl ×` that amount (paper §3.1: "a vector
    ///   operation can perform up to 16 × 8 micro-operations").
    pub fn micro_ops(self, vl: u32) -> u64 {
        use Opcode::*;
        let vl = vl.max(1) as u64;
        match self {
            // µSIMD packed arithmetic: lanes of the element width.
            PAdd(e, _)
            | PSub(e, _)
            | PMulLo(e)
            | PMulHi(e)
            | PAvg(e)
            | PMin(e, _)
            | PMax(e, _)
            | PAbsDiff(e)
            | PShl(e)
            | PShrL(e)
            | PShrA(e)
            | PPack(e, _)
            | PUnpackLo(e)
            | PUnpackHi(e)
            | PWidenLo(e, _)
            | PWidenHi(e, _)
            | PCmpEq(e)
            | PCmpGt(e)
            | PSplat(e) => e.lanes() as u64,
            PMAdd | PMulWidenEven(_) | PMulWidenOdd(_) => 4,
            PSad | PAnd | POr | PXor | PAndNot => 8,
            // Vector packed arithmetic: vl × lanes.
            VAdd(e, _)
            | VSub(e, _)
            | VMulLo(e)
            | VMulHi(e)
            | VAvg(e)
            | VMin(e, _)
            | VMax(e, _)
            | VAbsDiff(e)
            | VShl(e)
            | VShrL(e)
            | VShrA(e)
            | VPack(e, _)
            | VUnpackLo(e)
            | VUnpackHi(e)
            | VWidenLo(e, _)
            | VWidenHi(e, _)
            | VCmpEq(e)
            | VCmpGt(e)
            | VSplat(e) => vl * e.lanes() as u64,
            VMAdd | VMulWidenEven(_) | VMulWidenOdd(_) => vl * 4,
            VAnd | VOr | VXor | VMov => vl,
            VSadAcc => vl * 8,
            VMacAcc | VAddAcc => vl * 4,
            VLoad | VStore => vl,
            AccReduce | AccPackShrH | AccClear => 1,
            VExtract | VInsert => 1,
            // Everything scalar / µSIMD-move / memory counts as one.
            _ => 1,
        }
    }

    /// A short mnemonic used by the textual program / schedule dumps.
    pub fn mnemonic(self) -> String {
        format!("{self:?}")
            .to_lowercase()
            .replace(['(', ')', ','], "_")
            .replace(' ', "")
            .trim_end_matches('_')
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_classes_are_consistent_with_memory_flags() {
        let ops = [
            Opcode::IAdd,
            Opcode::Load(MemWidth::B4, Sign::Signed),
            Opcode::PLoad,
            Opcode::VLoad,
            Opcode::VAdd(Elem::H, Sat::Wrap),
            Opcode::PSad,
            Opcode::VSadAcc,
            Opcode::SetVL,
        ];
        for op in ops {
            if op.is_vector_memory() {
                assert_eq!(op.fu_class(), FuClass::MemL2, "{op:?}");
            } else if op.is_memory() {
                assert_eq!(op.fu_class(), FuClass::MemL1, "{op:?}");
            }
        }
        assert_eq!(Opcode::SetVL.fu_class(), FuClass::Int);
        assert_eq!(Opcode::VSadAcc.fu_class(), FuClass::Vector);
    }

    #[test]
    fn micro_op_counts_follow_the_paper_model() {
        // A vector operation can perform up to 16x8 micro-operations (§3.1).
        assert_eq!(Opcode::VAdd(Elem::B, Sat::Wrap).micro_ops(16), 128);
        assert_eq!(Opcode::VSadAcc.micro_ops(16), 128);
        assert_eq!(Opcode::VAdd(Elem::H, Sat::Wrap).micro_ops(8), 32);
        // µSIMD operations perform up to 8 micro-operations.
        assert_eq!(Opcode::PAdd(Elem::B, Sat::Wrap).micro_ops(1), 8);
        assert_eq!(Opcode::PAdd(Elem::H, Sat::Wrap).micro_ops(1), 4);
        // Scalar operations perform exactly one.
        assert_eq!(Opcode::IAdd.micro_ops(1), 1);
        assert_eq!(Opcode::Load(MemWidth::B4, Sign::Signed).micro_ops(1), 1);
    }

    #[test]
    fn dst_classes() {
        assert_eq!(Opcode::IAdd.dst_class(), Some(RegClass::Int));
        assert_eq!(
            Opcode::PAdd(Elem::B, Sat::Wrap).dst_class(),
            Some(RegClass::Simd)
        );
        assert_eq!(Opcode::VLoad.dst_class(), Some(RegClass::Vec));
        assert_eq!(Opcode::VSadAcc.dst_class(), Some(RegClass::Acc));
        assert_eq!(Opcode::AccReduce.dst_class(), Some(RegClass::Int));
        assert_eq!(Opcode::Store(MemWidth::B4).dst_class(), None);
        assert_eq!(Opcode::Br(BrCond::Lt).dst_class(), None);
    }

    #[test]
    fn vl_and_vs_implicit_reads() {
        assert!(Opcode::VLoad.reads_vl());
        assert!(Opcode::VLoad.reads_vs());
        assert!(Opcode::VAdd(Elem::H, Sat::Wrap).reads_vl());
        assert!(!Opcode::VAdd(Elem::H, Sat::Wrap).reads_vs());
        assert!(!Opcode::PAdd(Elem::H, Sat::Wrap).reads_vl());
        assert!(!Opcode::AccReduce.reads_vl());
    }

    #[test]
    fn vector_op_classification() {
        assert!(Opcode::SetVL.is_vector_op());
        assert!(Opcode::VLoad.is_vector_op());
        assert!(Opcode::VSadAcc.is_vector_op());
        assert!(!Opcode::PSad.is_vector_op());
        assert!(!Opcode::IAdd.is_vector_op());
    }

    #[test]
    fn mnemonics_are_lowercase_and_nonempty() {
        for op in [
            Opcode::IAdd,
            Opcode::VAdd(Elem::H, Sat::Signed),
            Opcode::Load(MemWidth::B2, Sign::Unsigned),
            Opcode::Br(BrCond::Ne),
        ] {
            let m = op.mnemonic();
            assert!(!m.is_empty());
            assert_eq!(m, m.to_lowercase());
        }
    }
}
