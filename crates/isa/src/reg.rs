//! Register files and register identifiers.
//!
//! The architecture (paper §3.2, Table 2) has five architecturally visible
//! register classes:
//!
//! * **Int** — 64-bit general purpose integer registers (addresses, scalars,
//!   loop counters).
//! * **Simd** — 64-bit µSIMD registers holding packed sub-word data
//!   (eight 8-bit / four 16-bit / two 32-bit elements).
//! * **Vec** — vector registers of 16 × 64-bit words; each word is itself a
//!   packed µSIMD word, so a vector register holds a matrix of up to 16 × 8
//!   elements.
//! * **Acc** — 192-bit packed accumulators used by reductions (SAD,
//!   multiply-accumulate).
//! * **Ctrl** — the two control registers: the vector-length register `VL`
//!   and the vector-stride register `VS`.

use std::fmt;

/// Maximum architectural vector length (number of 64-bit words per vector
/// register), fixed at 16 by the ISA (paper §3.1).
pub const MAX_VL: u32 = 16;

/// Register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// 64-bit integer registers.
    Int,
    /// 64-bit packed µSIMD registers.
    Simd,
    /// Vector registers (16 × 64-bit words).
    Vec,
    /// 192-bit packed accumulators.
    Acc,
    /// Control registers (`VL`, `VS`).
    Ctrl,
}

impl RegClass {
    /// All register classes, in a fixed order (useful for iteration in the
    /// register allocator and the simulator).
    pub const ALL: [RegClass; 5] = [
        RegClass::Int,
        RegClass::Simd,
        RegClass::Vec,
        RegClass::Acc,
        RegClass::Ctrl,
    ];

    /// Short prefix used when printing registers (`r`, `s`, `v`, `a`, `c`).
    pub fn prefix(self) -> &'static str {
        match self {
            RegClass::Int => "r",
            RegClass::Simd => "s",
            RegClass::Vec => "v",
            RegClass::Acc => "a",
            RegClass::Ctrl => "c",
        }
    }
}

/// Index of the vector-length control register.
pub const CTRL_VL: u32 = 0;
/// Index of the vector-stride control register.
pub const CTRL_VS: u32 = 1;

/// A register identifier.  Before register allocation the index is a
/// *virtual* register number (unbounded); after allocation it is a physical
/// register number within the class's architectural register file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg {
    pub class: RegClass,
    pub index: u32,
}

impl Reg {
    pub const fn new(class: RegClass, index: u32) -> Self {
        Reg { class, index }
    }

    pub const fn int(index: u32) -> Self {
        Reg::new(RegClass::Int, index)
    }

    pub const fn simd(index: u32) -> Self {
        Reg::new(RegClass::Simd, index)
    }

    pub const fn vec(index: u32) -> Self {
        Reg::new(RegClass::Vec, index)
    }

    pub const fn acc(index: u32) -> Self {
        Reg::new(RegClass::Acc, index)
    }

    /// The vector-length control register.
    pub const fn vl() -> Self {
        Reg::new(RegClass::Ctrl, CTRL_VL)
    }

    /// The vector-stride control register.
    pub const fn vs() -> Self {
        Reg::new(RegClass::Ctrl, CTRL_VS)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.class == RegClass::Ctrl {
            match self.index {
                CTRL_VL => write!(f, "vl"),
                CTRL_VS => write!(f, "vs"),
                i => write!(f, "c{i}"),
            }
        } else {
            write!(f, "{}{}", self.class.prefix(), self.index)
        }
    }
}

/// Architectural register file sizes for one machine configuration
/// (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFileSizes {
    pub int: u32,
    pub simd: u32,
    pub vec: u32,
    pub acc: u32,
}

impl RegFileSizes {
    /// Number of physical registers available for a class.  Control
    /// registers always exist (VL and VS).
    pub fn count(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Int => self.int,
            RegClass::Simd => self.simd,
            RegClass::Vec => self.vec,
            RegClass::Acc => self.acc,
            RegClass::Ctrl => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Reg::int(3).to_string(), "r3");
        assert_eq!(Reg::simd(12).to_string(), "s12");
        assert_eq!(Reg::vec(0).to_string(), "v0");
        assert_eq!(Reg::acc(1).to_string(), "a1");
        assert_eq!(Reg::vl().to_string(), "vl");
        assert_eq!(Reg::vs().to_string(), "vs");
    }

    #[test]
    fn regfile_counts() {
        let sizes = RegFileSizes {
            int: 64,
            simd: 0,
            vec: 20,
            acc: 4,
        };
        assert_eq!(sizes.count(RegClass::Int), 64);
        assert_eq!(sizes.count(RegClass::Vec), 20);
        assert_eq!(sizes.count(RegClass::Ctrl), 2);
    }

    #[test]
    fn reg_equality_and_ordering() {
        assert_eq!(Reg::int(1), Reg::int(1));
        assert_ne!(Reg::int(1), Reg::simd(1));
        assert!(Reg::int(1) < Reg::int(2));
    }
}
