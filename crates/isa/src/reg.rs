//! Register files and register identifiers.
//!
//! The architecture (paper §3.2, Table 2) has five architecturally visible
//! register classes:
//!
//! * **Int** — 64-bit general purpose integer registers (addresses, scalars,
//!   loop counters).
//! * **Simd** — 64-bit µSIMD registers holding packed sub-word data
//!   (eight 8-bit / four 16-bit / two 32-bit elements).
//! * **Vec** — vector registers of 16 × 64-bit words; each word is itself a
//!   packed µSIMD word, so a vector register holds a matrix of up to 16 × 8
//!   elements.
//! * **Acc** — 192-bit packed accumulators used by reductions (SAD,
//!   multiply-accumulate).
//! * **Ctrl** — the two control registers: the vector-length register `VL`
//!   and the vector-stride register `VS`.

use std::fmt;

/// Maximum architectural vector length (number of 64-bit words per vector
/// register), fixed at 16 by the ISA (paper §3.1).
pub const MAX_VL: u32 = 16;

/// Register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// 64-bit integer registers.
    Int,
    /// 64-bit packed µSIMD registers.
    Simd,
    /// Vector registers (16 × 64-bit words).
    Vec,
    /// 192-bit packed accumulators.
    Acc,
    /// Control registers (`VL`, `VS`).
    Ctrl,
}

impl RegClass {
    /// All register classes, in a fixed order (useful for iteration in the
    /// register allocator and the simulator).
    pub const ALL: [RegClass; 5] = [
        RegClass::Int,
        RegClass::Simd,
        RegClass::Vec,
        RegClass::Acc,
        RegClass::Ctrl,
    ];

    /// Short prefix used when printing registers (`r`, `s`, `v`, `a`, `c`).
    pub fn prefix(self) -> &'static str {
        match self {
            RegClass::Int => "r",
            RegClass::Simd => "s",
            RegClass::Vec => "v",
            RegClass::Acc => "a",
            RegClass::Ctrl => "c",
        }
    }
}

/// Index of the vector-length control register.
pub const CTRL_VL: u32 = 0;
/// Index of the vector-stride control register.
pub const CTRL_VS: u32 = 1;

/// A register identifier.  Before register allocation the index is a
/// *virtual* register number (unbounded); after allocation it is a physical
/// register number within the class's architectural register file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg {
    pub class: RegClass,
    pub index: u32,
}

impl Reg {
    pub const fn new(class: RegClass, index: u32) -> Self {
        Reg { class, index }
    }

    pub const fn int(index: u32) -> Self {
        Reg::new(RegClass::Int, index)
    }

    pub const fn simd(index: u32) -> Self {
        Reg::new(RegClass::Simd, index)
    }

    pub const fn vec(index: u32) -> Self {
        Reg::new(RegClass::Vec, index)
    }

    pub const fn acc(index: u32) -> Self {
        Reg::new(RegClass::Acc, index)
    }

    /// The vector-length control register.
    pub const fn vl() -> Self {
        Reg::new(RegClass::Ctrl, CTRL_VL)
    }

    /// The vector-stride control register.
    pub const fn vs() -> Self {
        Reg::new(RegClass::Ctrl, CTRL_VS)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.class == RegClass::Ctrl {
            match self.index {
                CTRL_VL => write!(f, "vl"),
                CTRL_VS => write!(f, "vs"),
                i => write!(f, "c{i}"),
            }
        } else {
            write!(f, "{}{}", self.class.prefix(), self.index)
        }
    }
}

/// Architectural register file sizes for one machine configuration
/// (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFileSizes {
    pub int: u32,
    pub simd: u32,
    pub vec: u32,
    pub acc: u32,
}

impl RegFileSizes {
    /// Number of physical registers available for a class.  Control
    /// registers always exist (VL and VS).
    pub fn count(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Int => self.int,
            RegClass::Simd => self.simd,
            RegClass::Vec => self.vec,
            RegClass::Acc => self.acc,
            RegClass::Ctrl => 2,
        }
    }
}

/// Sentinel slot value meaning "no slot" (e.g. an operation without a
/// destination register).  Kept out of the valid range by [`SlotLayout`].
pub const NO_SLOT: u16 = u16::MAX;

/// Flat slot indexing of every architectural register of one machine.
///
/// The five register classes are laid out back to back in a single dense
/// index space — `[int | simd | vec | acc | ctrl]` — so run-time structures
/// keyed by register (most importantly the simulator's ready-time
/// scoreboard) can be plain arrays indexed by slot instead of hash maps
/// keyed by `Reg`.  The layout mirrors the simulator's register files: a
/// class with zero architectural registers still gets one slot, matching
/// the one spare entry `RegFiles` allocates for inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotLayout {
    /// Per-class register counts (each at least 1, ctrl fixed at 2).
    counts: [u32; 5],
    /// Base slot of each class, in `RegClass::ALL` order.
    bases: [u16; 5],
    /// Total number of slots.
    total: u16,
}

impl SlotLayout {
    /// Build the layout for one machine's register files.
    pub fn new(sizes: &RegFileSizes) -> SlotLayout {
        let mut counts = [0u32; 5];
        let mut bases = [0u16; 5];
        let mut next: u32 = 0;
        for (i, class) in RegClass::ALL.iter().enumerate() {
            counts[i] = sizes.count(*class).max(1);
            bases[i] = next as u16;
            next += counts[i];
        }
        assert!(
            next < NO_SLOT as u32,
            "register files too large for u16 slot indices ({next} slots)"
        );
        SlotLayout {
            counts,
            bases,
            total: next as u16,
        }
    }

    /// Total number of slots (the scoreboard length).
    pub fn total_slots(&self) -> usize {
        self.total as usize
    }

    fn class_pos(class: RegClass) -> usize {
        match class {
            RegClass::Int => 0,
            RegClass::Simd => 1,
            RegClass::Vec => 2,
            RegClass::Acc => 3,
            RegClass::Ctrl => 4,
        }
    }

    /// Slot of a register, or `None` when its index exceeds the class's
    /// architectural register count.
    pub fn slot_of(&self, r: Reg) -> Option<u16> {
        let pos = Self::class_pos(r.class);
        if r.index < self.counts[pos] {
            Some(self.bases[pos] + r.index as u16)
        } else {
            None
        }
    }

    /// Slot of the vector-length control register.
    pub fn vl_slot(&self) -> u16 {
        self.bases[4] + CTRL_VL as u16
    }

    /// Slot of the vector-stride control register.
    pub fn vs_slot(&self) -> u16 {
        self.bases[4] + CTRL_VS as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Reg::int(3).to_string(), "r3");
        assert_eq!(Reg::simd(12).to_string(), "s12");
        assert_eq!(Reg::vec(0).to_string(), "v0");
        assert_eq!(Reg::acc(1).to_string(), "a1");
        assert_eq!(Reg::vl().to_string(), "vl");
        assert_eq!(Reg::vs().to_string(), "vs");
    }

    #[test]
    fn regfile_counts() {
        let sizes = RegFileSizes {
            int: 64,
            simd: 0,
            vec: 20,
            acc: 4,
        };
        assert_eq!(sizes.count(RegClass::Int), 64);
        assert_eq!(sizes.count(RegClass::Vec), 20);
        assert_eq!(sizes.count(RegClass::Ctrl), 2);
    }

    #[test]
    fn reg_equality_and_ordering() {
        assert_eq!(Reg::int(1), Reg::int(1));
        assert_ne!(Reg::int(1), Reg::simd(1));
        assert!(Reg::int(1) < Reg::int(2));
    }

    #[test]
    fn slot_layout_is_dense_and_injective() {
        let sizes = RegFileSizes {
            int: 64,
            simd: 16,
            vec: 20,
            acc: 4,
        };
        let layout = SlotLayout::new(&sizes);
        assert_eq!(layout.total_slots(), 64 + 16 + 20 + 4 + 2);
        let mut seen = std::collections::HashSet::new();
        for (class, count) in [
            (RegClass::Int, 64),
            (RegClass::Simd, 16),
            (RegClass::Vec, 20),
            (RegClass::Acc, 4),
            (RegClass::Ctrl, 2),
        ] {
            for i in 0..count {
                let slot = layout.slot_of(Reg::new(class, i)).unwrap();
                assert!((slot as usize) < layout.total_slots());
                assert!(seen.insert(slot), "slot {slot} assigned twice");
            }
        }
        assert_eq!(seen.len(), layout.total_slots());
        assert_eq!(layout.slot_of(Reg::vl()), Some(layout.vl_slot()));
        assert_eq!(layout.slot_of(Reg::vs()), Some(layout.vs_slot()));
    }

    #[test]
    fn slot_layout_rejects_out_of_range_registers() {
        let sizes = RegFileSizes {
            int: 8,
            simd: 0,
            vec: 4,
            acc: 2,
        };
        let layout = SlotLayout::new(&sizes);
        assert!(layout.slot_of(Reg::int(7)).is_some());
        assert!(layout.slot_of(Reg::int(8)).is_none());
        assert!(layout.slot_of(Reg::vec(4)).is_none());
        // A zero-sized class still gets the one spare slot RegFiles keeps.
        assert!(layout.slot_of(Reg::simd(0)).is_some());
        assert!(layout.slot_of(Reg::simd(1)).is_none());
    }
}
