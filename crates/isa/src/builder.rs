//! An ergonomic builder for hand-writing programs in the three ISAs.
//!
//! The paper's methodology (§3.3, §4.1) relies on *emulation libraries*: the
//! benchmarks are hand-written with µSIMD and Vector-µSIMD operations and the
//! compiler replaces the emulation calls with the corresponding low-level
//! operations.  `ProgramBuilder` plays exactly that role here: the kernels in
//! `vmv-kernels` are written against this API and produce `Program`s that the
//! static scheduler (`vmv-sched`) then schedules for a particular machine
//! configuration.
//!
//! Registers allocated through the builder are *virtual*; the register
//! allocator in `vmv-sched` later maps them onto the architectural register
//! files of Table 2.

use crate::opcode::{BrCond, MemWidth, Opcode};
use crate::packed::{Elem, Sat, Sign};
use crate::program::{BasicBlock, Op, Program, RegionId, RegionInfo};
use crate::reg::{Reg, RegClass};

/// Builder for [`Program`]s.
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    current: Option<usize>,
    next_index: [u32; 4],
    region: RegionId,
    /// Last compile-time-known vector length (simple data-flow analysis of
    /// `SetVL`, paper §3.3).
    known_vl: Option<u32>,
    /// Last compile-time-known vector stride in bytes.
    known_vs: Option<i64>,
    label_counter: u32,
}

impl ProgramBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program::new(name),
            current: None,
            next_index: [0; 4],
            region: RegionId::SCALAR,
            known_vl: None,
            known_vs: None,
            label_counter: 0,
        }
    }

    /// Finish building and return the program.
    pub fn finish(self) -> Program {
        self.program
    }

    // ------------------------------------------------------------- regions

    /// Declare a vector region and switch the builder into it.  Blocks
    /// created until the next region switch belong to this region.
    pub fn begin_region(&mut self, id: u32, name: impl Into<String>) {
        let id = RegionId(id);
        if self.program.region_info(id).is_none() {
            self.program.regions.push(RegionInfo {
                id,
                name: name.into(),
            });
        }
        self.region = id;
        // Region boundaries always start a fresh block so cycle accounting
        // can attribute whole blocks to a single region.
        self.auto_label("region");
    }

    /// Switch back to the scalar region (region 0).
    pub fn end_region(&mut self) {
        self.region = RegionId::SCALAR;
        self.auto_label("scalar");
    }

    /// The region the builder is currently emitting into.
    pub fn current_region(&self) -> RegionId {
        self.region
    }

    // -------------------------------------------------------------- blocks

    /// Start a new basic block with an explicit label.
    pub fn label(&mut self, label: impl Into<String>) {
        let block = BasicBlock::new(label, self.region);
        self.program.blocks.push(block);
        self.current = Some(self.program.blocks.len() - 1);
    }

    /// Start a new basic block with a generated (unique) label and return it.
    pub fn auto_label(&mut self, prefix: &str) -> String {
        let label = format!("{prefix}_{}", self.label_counter);
        self.label_counter += 1;
        self.label(label.clone());
        label
    }

    /// Generate a fresh label name without starting a block (for forward
    /// branch targets).
    pub fn fresh_label(&mut self, prefix: &str) -> String {
        let label = format!("{prefix}_{}", self.label_counter);
        self.label_counter += 1;
        label
    }

    // ----------------------------------------------------------- registers

    fn fresh(&mut self, class: RegClass) -> Reg {
        let slot = match class {
            RegClass::Int => 0,
            RegClass::Simd => 1,
            RegClass::Vec => 2,
            RegClass::Acc => 3,
            RegClass::Ctrl => panic!("control registers are not allocated"),
        };
        let idx = self.next_index[slot];
        self.next_index[slot] += 1;
        Reg::new(class, idx)
    }

    /// Allocate a fresh virtual integer register.
    pub fn ri(&mut self) -> Reg {
        self.fresh(RegClass::Int)
    }

    /// Allocate a fresh virtual µSIMD register.
    pub fn rs(&mut self) -> Reg {
        self.fresh(RegClass::Simd)
    }

    /// Allocate a fresh virtual vector register.
    pub fn rv(&mut self) -> Reg {
        self.fresh(RegClass::Vec)
    }

    /// Allocate a fresh virtual accumulator register.
    pub fn ra(&mut self) -> Reg {
        self.fresh(RegClass::Acc)
    }

    /// Number of virtual registers allocated so far in each class
    /// (int, µSIMD, vector, accumulator).
    pub fn vreg_counts(&self) -> [u32; 4] {
        self.next_index
    }

    // ------------------------------------------------------------ emission

    /// Emit a raw operation into the current block.
    pub fn emit(&mut self, mut op: Op) {
        if op.opcode.reads_vl() && op.vl_hint.is_none() {
            op.vl_hint = self.known_vl;
        }
        if op.opcode.reads_vs() && op.vs_hint.is_none() {
            op.vs_hint = self.known_vs;
        }
        if self.current.is_none() {
            self.label("entry");
        }
        let idx = self
            .current
            .expect("a current block always exists after label()");
        self.program.blocks[idx].ops.push(op);
    }

    // -------------------------------------------------------- scalar moves

    /// Load an immediate into a register.
    pub fn li(&mut self, dst: Reg, imm: i64) {
        self.emit(Op::new(Opcode::MovI).with_dst(dst).with_imm(imm));
    }

    /// Allocate a fresh integer register holding `imm`.
    pub fn imm(&mut self, imm: i64) -> Reg {
        let r = self.ri();
        self.li(r, imm);
        r
    }

    /// Copy an integer register.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(Op::new(Opcode::Mov).with_dst(dst).with_srcs(&[src]));
    }

    // --------------------------------------------------- scalar arithmetic

    fn bin(&mut self, opcode: Opcode, dst: Reg, a: Reg, b: Reg) {
        self.emit(Op::new(opcode).with_dst(dst).with_srcs(&[a, b]));
    }

    fn bin_imm(&mut self, opcode: Opcode, dst: Reg, a: Reg, imm: i64) {
        self.emit(Op::new(opcode).with_dst(dst).with_srcs(&[a]).with_imm(imm));
    }

    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IAdd, dst, a, b);
    }
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.bin_imm(Opcode::IAdd, dst, a, imm);
    }
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::ISub, dst, a, b);
    }
    pub fn subi(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.bin_imm(Opcode::ISub, dst, a, imm);
    }
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IMul, dst, a, b);
    }
    pub fn muli(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.bin_imm(Opcode::IMul, dst, a, imm);
    }
    pub fn div(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IDiv, dst, a, b);
    }
    pub fn rem(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IRem, dst, a, b);
    }
    pub fn and(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IAnd, dst, a, b);
    }
    pub fn andi(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.bin_imm(Opcode::IAnd, dst, a, imm);
    }
    pub fn or(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IOr, dst, a, b);
    }
    pub fn ori(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.bin_imm(Opcode::IOr, dst, a, imm);
    }
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IXor, dst, a, b);
    }
    pub fn shli(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.bin_imm(Opcode::IShl, dst, a, imm);
    }
    pub fn shl(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IShl, dst, a, b);
    }
    pub fn shri(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.bin_imm(Opcode::IShr, dst, a, imm);
    }
    pub fn shr(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IShr, dst, a, b);
    }
    pub fn srai(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.bin_imm(Opcode::ISra, dst, a, imm);
    }
    pub fn sra(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::ISra, dst, a, b);
    }
    pub fn slt(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::ISlt, dst, a, b);
    }
    pub fn slti(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.bin_imm(Opcode::ISlt, dst, a, imm);
    }
    pub fn sltu(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::ISltu, dst, a, b);
    }
    pub fn seq(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::ISeq, dst, a, b);
    }
    pub fn imin(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IMin, dst, a, b);
    }
    pub fn imax(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::IMax, dst, a, b);
    }
    pub fn iabs(&mut self, dst: Reg, a: Reg) {
        self.emit(Op::new(Opcode::IAbs).with_dst(dst).with_srcs(&[a]));
    }

    // ------------------------------------------------------- scalar memory

    pub fn load(&mut self, width: MemWidth, sign: Sign, dst: Reg, base: Reg, off: i64) {
        self.emit(
            Op::new(Opcode::Load(width, sign))
                .with_dst(dst)
                .with_srcs(&[base])
                .with_imm(off),
        );
    }
    pub fn ld8u(&mut self, dst: Reg, base: Reg, off: i64) {
        self.load(MemWidth::B1, Sign::Unsigned, dst, base, off);
    }
    pub fn ld8s(&mut self, dst: Reg, base: Reg, off: i64) {
        self.load(MemWidth::B1, Sign::Signed, dst, base, off);
    }
    pub fn ld16u(&mut self, dst: Reg, base: Reg, off: i64) {
        self.load(MemWidth::B2, Sign::Unsigned, dst, base, off);
    }
    pub fn ld16s(&mut self, dst: Reg, base: Reg, off: i64) {
        self.load(MemWidth::B2, Sign::Signed, dst, base, off);
    }
    pub fn ld32s(&mut self, dst: Reg, base: Reg, off: i64) {
        self.load(MemWidth::B4, Sign::Signed, dst, base, off);
    }
    pub fn ld32u(&mut self, dst: Reg, base: Reg, off: i64) {
        self.load(MemWidth::B4, Sign::Unsigned, dst, base, off);
    }
    pub fn ld64(&mut self, dst: Reg, base: Reg, off: i64) {
        self.load(MemWidth::B8, Sign::Signed, dst, base, off);
    }

    pub fn store(&mut self, width: MemWidth, base: Reg, off: i64, val: Reg) {
        self.emit(
            Op::new(Opcode::Store(width))
                .with_srcs(&[base, val])
                .with_imm(off),
        );
    }
    pub fn st8(&mut self, base: Reg, off: i64, val: Reg) {
        self.store(MemWidth::B1, base, off, val);
    }
    pub fn st16(&mut self, base: Reg, off: i64, val: Reg) {
        self.store(MemWidth::B2, base, off, val);
    }
    pub fn st32(&mut self, base: Reg, off: i64, val: Reg) {
        self.store(MemWidth::B4, base, off, val);
    }
    pub fn st64(&mut self, base: Reg, off: i64, val: Reg) {
        self.store(MemWidth::B8, base, off, val);
    }

    // ------------------------------------------------------ control flow

    /// Conditional branch comparing two registers.
    pub fn br(&mut self, cond: BrCond, a: Reg, b: Reg, target: impl Into<String>) {
        self.emit(
            Op::new(Opcode::Br(cond))
                .with_srcs(&[a, b])
                .with_target(target),
        );
    }

    /// Conditional branch comparing a register against an immediate.
    pub fn br_imm(&mut self, cond: BrCond, a: Reg, imm: i64, target: impl Into<String>) {
        self.emit(
            Op::new(Opcode::Br(cond))
                .with_srcs(&[a])
                .with_imm(imm)
                .with_target(target),
        );
    }

    pub fn beq(&mut self, a: Reg, b: Reg, target: impl Into<String>) {
        self.br(BrCond::Eq, a, b, target);
    }
    pub fn bne(&mut self, a: Reg, b: Reg, target: impl Into<String>) {
        self.br(BrCond::Ne, a, b, target);
    }
    pub fn blt(&mut self, a: Reg, b: Reg, target: impl Into<String>) {
        self.br(BrCond::Lt, a, b, target);
    }
    pub fn bge(&mut self, a: Reg, b: Reg, target: impl Into<String>) {
        self.br(BrCond::Ge, a, b, target);
    }
    pub fn bgt_i(&mut self, a: Reg, imm: i64, target: impl Into<String>) {
        self.br_imm(BrCond::Gt, a, imm, target);
    }
    pub fn bne_i(&mut self, a: Reg, imm: i64, target: impl Into<String>) {
        self.br_imm(BrCond::Ne, a, imm, target);
    }
    pub fn blt_i(&mut self, a: Reg, imm: i64, target: impl Into<String>) {
        self.br_imm(BrCond::Lt, a, imm, target);
    }

    pub fn jump(&mut self, target: impl Into<String>) {
        self.emit(Op::new(Opcode::Jump).with_target(target));
    }

    pub fn halt(&mut self) {
        self.emit(Op::new(Opcode::Halt));
    }

    /// Emit a count-down loop executing `body` `count` times.  The body
    /// receives the loop counter register, which counts from `count` down to
    /// 1.  The loop becomes its own basic block (plus an exit block).
    pub fn counted_loop(&mut self, name: &str, count: i64, body: impl FnOnce(&mut Self, Reg)) {
        let counter = self.ri();
        self.li(counter, count);
        let head = self.fresh_label(&format!("{name}_head"));
        self.label(head.clone());
        body(self, counter);
        self.subi(counter, counter, 1);
        self.bgt_i(counter, 0, head);
        self.auto_label(&format!("{name}_exit"));
    }

    // ------------------------------------------------------------- µSIMD

    pub fn pload(&mut self, dst: Reg, base: Reg, off: i64) {
        self.emit(
            Op::new(Opcode::PLoad)
                .with_dst(dst)
                .with_srcs(&[base])
                .with_imm(off),
        );
    }
    pub fn pstore(&mut self, base: Reg, off: i64, val: Reg) {
        self.emit(
            Op::new(Opcode::PStore)
                .with_srcs(&[base, val])
                .with_imm(off),
        );
    }
    pub fn pmov(&mut self, dst: Reg, src: Reg) {
        self.emit(Op::new(Opcode::PMov).with_dst(dst).with_srcs(&[src]));
    }
    pub fn int_to_simd(&mut self, dst: Reg, src: Reg) {
        self.emit(
            Op::new(Opcode::MovIntToSimd)
                .with_dst(dst)
                .with_srcs(&[src]),
        );
    }
    pub fn simd_to_int(&mut self, dst: Reg, src: Reg) {
        self.emit(
            Op::new(Opcode::MovSimdToInt)
                .with_dst(dst)
                .with_srcs(&[src]),
        );
    }
    pub fn psplat(&mut self, e: Elem, dst: Reg, src: Reg) {
        self.emit(Op::new(Opcode::PSplat(e)).with_dst(dst).with_srcs(&[src]));
    }
    /// Broadcast an immediate into every lane of a fresh µSIMD register.
    pub fn psplat_imm(&mut self, e: Elem, imm: i64) -> Reg {
        let tmp = self.imm(imm);
        let dst = self.rs();
        self.psplat(e, dst, tmp);
        dst
    }

    pub fn padd(&mut self, e: Elem, sat: Sat, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PAdd(e, sat), dst, a, b);
    }
    pub fn psub(&mut self, e: Elem, sat: Sat, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PSub(e, sat), dst, a, b);
    }
    pub fn pmullo(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PMulLo(e), dst, a, b);
    }
    pub fn pmulhi(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PMulHi(e), dst, a, b);
    }
    pub fn pmadd(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PMAdd, dst, a, b);
    }
    pub fn pmul_widen_even(&mut self, sign: Sign, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PMulWidenEven(sign), dst, a, b);
    }
    pub fn pmul_widen_odd(&mut self, sign: Sign, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PMulWidenOdd(sign), dst, a, b);
    }
    pub fn pavg(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PAvg(e), dst, a, b);
    }
    pub fn pmin(&mut self, e: Elem, sign: Sign, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PMin(e, sign), dst, a, b);
    }
    pub fn pmax(&mut self, e: Elem, sign: Sign, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PMax(e, sign), dst, a, b);
    }
    pub fn pabsdiff(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PAbsDiff(e), dst, a, b);
    }
    pub fn psad(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PSad, dst, a, b);
    }
    pub fn pand(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PAnd, dst, a, b);
    }
    pub fn por(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::POr, dst, a, b);
    }
    pub fn pxor(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PXor, dst, a, b);
    }
    pub fn pshl(&mut self, e: Elem, dst: Reg, a: Reg, amount: i64) {
        self.bin_imm(Opcode::PShl(e), dst, a, amount);
    }
    pub fn pshrl(&mut self, e: Elem, dst: Reg, a: Reg, amount: i64) {
        self.bin_imm(Opcode::PShrL(e), dst, a, amount);
    }
    pub fn pshra(&mut self, e: Elem, dst: Reg, a: Reg, amount: i64) {
        self.bin_imm(Opcode::PShrA(e), dst, a, amount);
    }
    pub fn ppack(&mut self, e: Elem, sign: Sign, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PPack(e, sign), dst, a, b);
    }
    pub fn punpack_lo(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PUnpackLo(e), dst, a, b);
    }
    pub fn punpack_hi(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PUnpackHi(e), dst, a, b);
    }
    pub fn pwiden_lo(&mut self, e: Elem, sign: Sign, dst: Reg, a: Reg) {
        self.emit(
            Op::new(Opcode::PWidenLo(e, sign))
                .with_dst(dst)
                .with_srcs(&[a]),
        );
    }
    pub fn pwiden_hi(&mut self, e: Elem, sign: Sign, dst: Reg, a: Reg) {
        self.emit(
            Op::new(Opcode::PWidenHi(e, sign))
                .with_dst(dst)
                .with_srcs(&[a]),
        );
    }
    pub fn pcmp_eq(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PCmpEq(e), dst, a, b);
    }
    pub fn pcmp_gt(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::PCmpGt(e), dst, a, b);
    }
    pub fn pextract(&mut self, e: Elem, dst: Reg, a: Reg, lane: i64) {
        self.bin_imm(Opcode::PExtract(e), dst, a, lane);
    }
    pub fn pinsert(&mut self, e: Elem, dst: Reg, src: Reg, lane: i64) {
        // dst is read-modify-write: the untouched lanes are preserved.
        self.emit(
            Op::new(Opcode::PInsert(e))
                .with_dst(dst)
                .with_srcs(&[dst, src])
                .with_imm(lane),
        );
    }

    // ------------------------------------------------------------- vector

    /// Set the vector length from an immediate (records the value so later
    /// vector operations carry an exact `vl_hint`).
    pub fn setvl(&mut self, vl: u32) {
        self.known_vl = Some(vl);
        self.emit(
            Op::new(Opcode::SetVL)
                .with_dst(Reg::vl())
                .with_imm(vl as i64),
        );
    }
    /// Set the vector length from a register (the scheduler will assume the
    /// maximum vector length, paper §3.3).
    pub fn setvl_reg(&mut self, src: Reg) {
        self.known_vl = None;
        self.emit(Op::new(Opcode::SetVL).with_dst(Reg::vl()).with_srcs(&[src]));
    }
    /// Set the vector stride (bytes between consecutive 64-bit words of a
    /// vector memory access) from an immediate.
    pub fn setvs(&mut self, stride_bytes: i64) {
        self.known_vs = Some(stride_bytes);
        self.emit(
            Op::new(Opcode::SetVS)
                .with_dst(Reg::vs())
                .with_imm(stride_bytes),
        );
    }
    /// Set the vector stride from a register.
    pub fn setvs_reg(&mut self, src: Reg) {
        self.known_vs = None;
        self.emit(Op::new(Opcode::SetVS).with_dst(Reg::vs()).with_srcs(&[src]));
    }

    pub fn vload(&mut self, dst: Reg, base: Reg, off: i64) {
        self.emit(
            Op::new(Opcode::VLoad)
                .with_dst(dst)
                .with_srcs(&[base])
                .with_imm(off),
        );
    }
    pub fn vstore(&mut self, base: Reg, off: i64, val: Reg) {
        self.emit(
            Op::new(Opcode::VStore)
                .with_srcs(&[base, val])
                .with_imm(off),
        );
    }
    pub fn vmov(&mut self, dst: Reg, src: Reg) {
        self.emit(Op::new(Opcode::VMov).with_dst(dst).with_srcs(&[src]));
    }
    pub fn vsplat(&mut self, e: Elem, dst: Reg, src: Reg) {
        self.emit(Op::new(Opcode::VSplat(e)).with_dst(dst).with_srcs(&[src]));
    }
    /// Broadcast an immediate into every lane of every word of a fresh
    /// vector register.
    pub fn vsplat_imm(&mut self, e: Elem, imm: i64) -> Reg {
        let tmp = self.imm(imm);
        let dst = self.rv();
        self.vsplat(e, dst, tmp);
        dst
    }

    pub fn vadd(&mut self, e: Elem, sat: Sat, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VAdd(e, sat), dst, a, b);
    }
    pub fn vsub(&mut self, e: Elem, sat: Sat, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VSub(e, sat), dst, a, b);
    }
    pub fn vmullo(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VMulLo(e), dst, a, b);
    }
    pub fn vmulhi(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VMulHi(e), dst, a, b);
    }
    pub fn vmadd(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VMAdd, dst, a, b);
    }
    pub fn vmul_widen_even(&mut self, sign: Sign, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VMulWidenEven(sign), dst, a, b);
    }
    pub fn vmul_widen_odd(&mut self, sign: Sign, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VMulWidenOdd(sign), dst, a, b);
    }
    pub fn vavg(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VAvg(e), dst, a, b);
    }
    pub fn vmin(&mut self, e: Elem, sign: Sign, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VMin(e, sign), dst, a, b);
    }
    pub fn vmax(&mut self, e: Elem, sign: Sign, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VMax(e, sign), dst, a, b);
    }
    pub fn vabsdiff(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VAbsDiff(e), dst, a, b);
    }
    pub fn vand(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VAnd, dst, a, b);
    }
    pub fn vor(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VOr, dst, a, b);
    }
    pub fn vxor(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VXor, dst, a, b);
    }
    pub fn vshl(&mut self, e: Elem, dst: Reg, a: Reg, amount: i64) {
        self.bin_imm(Opcode::VShl(e), dst, a, amount);
    }
    pub fn vshrl(&mut self, e: Elem, dst: Reg, a: Reg, amount: i64) {
        self.bin_imm(Opcode::VShrL(e), dst, a, amount);
    }
    pub fn vshra(&mut self, e: Elem, dst: Reg, a: Reg, amount: i64) {
        self.bin_imm(Opcode::VShrA(e), dst, a, amount);
    }
    pub fn vpack(&mut self, e: Elem, sign: Sign, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VPack(e, sign), dst, a, b);
    }
    pub fn vunpack_lo(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VUnpackLo(e), dst, a, b);
    }
    pub fn vunpack_hi(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VUnpackHi(e), dst, a, b);
    }
    pub fn vwiden_lo(&mut self, e: Elem, sign: Sign, dst: Reg, a: Reg) {
        self.emit(
            Op::new(Opcode::VWidenLo(e, sign))
                .with_dst(dst)
                .with_srcs(&[a]),
        );
    }
    pub fn vwiden_hi(&mut self, e: Elem, sign: Sign, dst: Reg, a: Reg) {
        self.emit(
            Op::new(Opcode::VWidenHi(e, sign))
                .with_dst(dst)
                .with_srcs(&[a]),
        );
    }
    pub fn vcmp_eq(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VCmpEq(e), dst, a, b);
    }
    pub fn vcmp_gt(&mut self, e: Elem, dst: Reg, a: Reg, b: Reg) {
        self.bin(Opcode::VCmpGt(e), dst, a, b);
    }
    pub fn vextract(&mut self, dst: Reg, v: Reg, word: i64) {
        self.bin_imm(Opcode::VExtract, dst, v, word);
    }
    pub fn vinsert(&mut self, dst: Reg, src: Reg, word: i64) {
        self.emit(
            Op::new(Opcode::VInsert)
                .with_dst(dst)
                .with_srcs(&[dst, src])
                .with_imm(word),
        );
    }

    // -------------------------------------------------------- accumulators

    pub fn acc_clear(&mut self, acc: Reg) {
        self.emit(Op::new(Opcode::AccClear).with_dst(acc));
    }
    pub fn vsad_acc(&mut self, acc: Reg, a: Reg, b: Reg) {
        self.emit(
            Op::new(Opcode::VSadAcc)
                .with_dst(acc)
                .with_srcs(&[acc, a, b]),
        );
    }
    pub fn vmac_acc(&mut self, acc: Reg, a: Reg, b: Reg) {
        self.emit(
            Op::new(Opcode::VMacAcc)
                .with_dst(acc)
                .with_srcs(&[acc, a, b]),
        );
    }
    pub fn vadd_acc(&mut self, acc: Reg, a: Reg) {
        self.emit(Op::new(Opcode::VAddAcc).with_dst(acc).with_srcs(&[acc, a]));
    }
    pub fn acc_reduce(&mut self, dst: Reg, acc: Reg) {
        self.emit(Op::new(Opcode::AccReduce).with_dst(dst).with_srcs(&[acc]));
    }
    pub fn acc_pack_shr_h(&mut self, dst: Reg, acc: Reg, shift: i64) {
        self.emit(
            Op::new(Opcode::AccPackShrH)
                .with_dst(dst)
                .with_srcs(&[acc])
                .with_imm(shift),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    #[test]
    fn builder_creates_entry_block_on_demand() {
        let mut b = ProgramBuilder::new("t");
        let r = b.imm(7);
        let p = b.finish();
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.blocks[0].label, "entry");
        assert_eq!(p.blocks[0].ops.len(), 1);
        assert_eq!(p.blocks[0].ops[0].dst, Some(r));
    }

    #[test]
    fn counted_loop_structure() {
        let mut b = ProgramBuilder::new("loop");
        let acc = b.ri();
        b.li(acc, 0);
        b.counted_loop("sum", 10, |b, _cnt| {
            b.addi(acc, acc, 1);
        });
        b.halt();
        let p = b.finish();
        // entry + loop head + exit blocks
        assert!(p.blocks.len() >= 3);
        let head = p
            .blocks
            .iter()
            .find(|blk| blk.label.starts_with("sum_head"))
            .unwrap();
        assert!(head.terminator().is_some());
    }

    #[test]
    fn vector_ops_carry_vl_hint_from_setvl() {
        let mut b = ProgramBuilder::new("v");
        let base = b.imm(0x1000);
        let v = b.rv();
        b.setvl(8);
        b.setvs(8);
        b.vload(v, base, 0);
        let p = b.finish();
        let vload = p
            .iter_ops()
            .map(|(_, o)| o)
            .find(|o| o.opcode == Opcode::VLoad)
            .unwrap();
        assert_eq!(vload.vl_hint, Some(8));
        assert_eq!(vload.vs_hint, Some(8));
    }

    #[test]
    fn setvl_from_register_clears_hint() {
        let mut b = ProgramBuilder::new("v");
        let base = b.imm(0x1000);
        let n = b.imm(4);
        b.setvl(8);
        b.setvl_reg(n);
        let v = b.rv();
        b.vload(v, base, 0);
        let p = b.finish();
        let vload = p
            .iter_ops()
            .map(|(_, o)| o)
            .find(|o| o.opcode == Opcode::VLoad)
            .unwrap();
        assert_eq!(vload.vl_hint, None);
    }

    #[test]
    fn regions_start_new_blocks() {
        let mut b = ProgramBuilder::new("r");
        b.label("start");
        let x = b.imm(1);
        b.begin_region(1, "color conversion");
        b.addi(x, x, 1);
        b.end_region();
        b.halt();
        let p = b.finish();
        let region_ids = p.region_ids();
        assert!(region_ids.contains(&crate::program::RegionId(1)));
        // the op inside the region must be in a block tagged with region 1
        let blk = p
            .blocks
            .iter()
            .find(|blk| blk.region == crate::program::RegionId(1))
            .unwrap();
        assert_eq!(blk.ops.len(), 1);
    }

    #[test]
    fn fresh_registers_are_distinct_per_class() {
        let mut b = ProgramBuilder::new("f");
        let a = b.ri();
        let c = b.ri();
        let s = b.rs();
        let v = b.rv();
        assert_ne!(a, c);
        assert_ne!(a.class, s.class);
        assert_ne!(s.class, v.class);
        assert_eq!(b.vreg_counts()[0], 2);
    }

    #[test]
    fn pinsert_and_vinsert_read_their_destination() {
        let mut b = ProgramBuilder::new("ins");
        let s = b.rs();
        let x = b.ri();
        b.pinsert(Elem::H, s, x, 2);
        let v = b.rv();
        b.vinsert(v, s, 3);
        let p = b.finish();
        let ops: Vec<_> = p.iter_ops().map(|(_, o)| o.clone()).collect();
        let pins = ops
            .iter()
            .find(|o| matches!(o.opcode, Opcode::PInsert(_)))
            .unwrap();
        assert!(pins.srcs.contains(&s));
        let vins = ops.iter().find(|o| o.opcode == Opcode::VInsert).unwrap();
        assert!(vins.srcs.contains(&v));
    }
}
