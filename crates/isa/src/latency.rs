//! HPL-PD style latency descriptors (paper §3.3, Fig. 3).
//!
//! For every operand of an operation, the scheduler needs an *earliest* and
//! *latest* read / write time relative to the operation's initiation.  For a
//! scalar operation with flow latency `L`, inputs are read during cycle 0 and
//! the output is written at cycle `L`.  For a vector operation the times also
//! depend on the vector length `VL` and the number of parallel vector lanes
//! `LN` (or, for memory operations, the width of the L2 port in elements):
//! up to `LN` sub-operations start per cycle, so the last input is read at
//! `(VL-1)/LN` and the last output is written at `L + (VL-1)/LN`.

/// Latency descriptor of one operation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyDescriptor {
    /// Earliest read of any source operand (cycles after initiation).
    pub earliest_read: u32,
    /// Latest read of any source operand.
    pub latest_read: u32,
    /// Earliest write of the destination operand.
    pub earliest_write: u32,
    /// Latest write of the destination operand.  A dependent operation can
    /// safely issue `latest_write` cycles after this one.
    pub latest_write: u32,
}

impl LatencyDescriptor {
    /// Descriptor of a fully pipelined scalar operation with flow latency
    /// `l` (Fig. 3a: `Ter = Tlr = Tew = 0`, `Tlw = L`).
    pub fn scalar(l: u32) -> Self {
        LatencyDescriptor {
            earliest_read: 0,
            latest_read: 0,
            earliest_write: 0,
            latest_write: l,
        }
    }

    /// Descriptor of a vector operation with sub-operation flow latency `l`,
    /// vector length `vl` and `ln` parallel lanes (Fig. 3b:
    /// `Tlr = (VL-1)/LN`, `Tlw = L + (VL-1)/LN`).
    ///
    /// For vector memory operations `ln` is the L2 port width in elements.
    pub fn vector(l: u32, vl: u32, ln: u32) -> Self {
        let vl = vl.max(1);
        let ln = ln.max(1);
        let tail = (vl - 1) / ln;
        LatencyDescriptor {
            earliest_read: 0,
            latest_read: tail,
            earliest_write: 0,
            latest_write: l + tail,
        }
    }

    /// Number of cycles a dependent operation must wait after this one's
    /// initiation before it can read the result through the register file
    /// (no chaining).
    pub fn result_latency(&self) -> u32 {
        self.latest_write
    }

    /// Number of cycles a *chained* consumer must wait: with chaining
    /// (paper §3.3), the consumer may start as soon as the first elements
    /// have been produced, i.e. after the sub-operation flow latency alone.
    pub fn chained_latency(&self) -> u32 {
        self.latest_write - self.latest_read
    }

    /// Cycles during which the operation occupies its functional unit's
    /// issue slot for new sub-operations (`1 + Tlr`): a vector operation
    /// with more sub-operations than lanes keeps initiating sub-operations
    /// for several cycles.
    pub fn occupancy(&self) -> u32 {
        1 + self.latest_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_descriptor_matches_fig3a() {
        let d = LatencyDescriptor::scalar(3);
        assert_eq!(d.earliest_read, 0);
        assert_eq!(d.latest_read, 0);
        assert_eq!(d.earliest_write, 0);
        assert_eq!(d.latest_write, 3);
        assert_eq!(d.result_latency(), 3);
        assert_eq!(d.occupancy(), 1);
    }

    #[test]
    fn vector_descriptor_matches_fig3b() {
        // VL = 16, 4 lanes, L = 2: last read at (16-1)/4 = 3, last write at 5.
        let d = LatencyDescriptor::vector(2, 16, 4);
        assert_eq!(d.latest_read, 3);
        assert_eq!(d.latest_write, 5);
        assert_eq!(d.occupancy(), 4);
        assert_eq!(d.chained_latency(), 2);
    }

    #[test]
    fn vector_descriptor_short_vector() {
        // If the vector length is at most the number of lanes the operation
        // behaves like a scalar operation of latency L.
        let d = LatencyDescriptor::vector(2, 4, 4);
        assert_eq!(d.latest_read, 0);
        assert_eq!(d.latest_write, 2);
        assert_eq!(d.occupancy(), 1);
    }

    #[test]
    fn worst_case_penalty_for_unknown_vl() {
        // Paper §3.3: assuming VL=16 when it turns out to be ≤4 costs at most
        // three extra cycles with four lanes.
        let assumed = LatencyDescriptor::vector(2, 16, 4);
        let actual = LatencyDescriptor::vector(2, 4, 4);
        assert_eq!(assumed.result_latency() - actual.result_latency(), 3);
    }

    #[test]
    fn memory_port_width_acts_as_lanes() {
        // A vector load of 8 words through a 4-element wide port: 5 + (8-1)/4.
        let d = LatencyDescriptor::vector(5, 8, 4);
        assert_eq!(d.result_latency(), 6);
        // Through a 1-element port (non-unit stride): 5 + 7.
        let d1 = LatencyDescriptor::vector(5, 8, 1);
        assert_eq!(d1.result_latency(), 12);
    }
}
