//! Static well-formedness checks for programs.
//!
//! The builder API makes it easy to construct malformed programs (branches to
//! missing labels, operands of the wrong register class, operations after a
//! block terminator).  `verify_program` catches these mistakes before the
//! scheduler or the simulator trip over them, and is run by the kernel test
//! suite on every generated program.

use std::collections::HashSet;

use crate::opcode::Opcode;
use crate::program::{Program, RegionId};
use crate::reg::RegClass;

/// A single verification problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub block: String,
    pub op_index: usize,
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} @ {}] {}", self.block, self.op_index, self.message)
    }
}

/// Verify a program, returning every problem found (empty = well-formed).
pub fn verify_program(program: &Program) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let labels: HashSet<&str> = program.blocks.iter().map(|b| b.label.as_str()).collect();

    // Duplicate labels.
    {
        let mut seen = HashSet::new();
        for block in &program.blocks {
            if !seen.insert(block.label.as_str()) {
                errors.push(VerifyError {
                    block: block.label.clone(),
                    op_index: 0,
                    message: format!("duplicate block label '{}'", block.label),
                });
            }
        }
    }

    // Region metadata.
    for block in &program.blocks {
        if block.region != RegionId::SCALAR && program.region_info(block.region).is_none() {
            errors.push(VerifyError {
                block: block.label.clone(),
                op_index: 0,
                message: format!("block references undeclared region {}", block.region.0),
            });
        }
    }

    for block in &program.blocks {
        for (i, op) in block.ops.iter().enumerate() {
            let mut err = |message: String| {
                errors.push(VerifyError {
                    block: block.label.clone(),
                    op_index: i,
                    message,
                });
            };

            // Control operations may only appear as the last operation of a
            // block (blocks are the scheduling unit).
            if i + 1 < block.ops.len() && (op.opcode.is_branch() || op.opcode == Opcode::Halt) {
                err(format!(
                    "control operation {} is not the last in its block",
                    op.opcode.mnemonic()
                ));
            }

            // Branch targets must exist.
            if op.opcode.is_branch() {
                match &op.target {
                    Some(t) if labels.contains(t.as_str()) => {}
                    Some(t) => err(format!("branch target '{t}' does not exist")),
                    None => err("branch without a target".to_string()),
                }
            }

            // Destination register class must match the opcode.
            match (op.opcode.dst_class(), op.dst) {
                (Some(expected), Some(reg)) => {
                    if reg.class != expected {
                        err(format!(
                            "destination {reg} has class {:?}, expected {:?}",
                            reg.class, expected
                        ));
                    }
                }
                (Some(_), None) => err("missing destination register".to_string()),
                (None, Some(reg)) => err(format!("unexpected destination register {reg}")),
                (None, None) => {}
            }

            // Source sanity for a few structurally important opcodes.
            match op.opcode {
                Opcode::Load(..) | Opcode::PLoad | Opcode::VLoad
                    if op.srcs.first().map(|r| r.class) != Some(RegClass::Int) =>
                {
                    err("memory operation needs an integer base address register".into());
                }
                Opcode::Store(..) | Opcode::PStore | Opcode::VStore => {
                    if op.srcs.first().map(|r| r.class) != Some(RegClass::Int) {
                        err("memory operation needs an integer base address register".into());
                    }
                    if op.srcs.len() < 2 {
                        err("store needs a value register".into());
                    }
                }
                Opcode::MovI if op.imm.is_none() => {
                    err("movi needs an immediate".into());
                }
                Opcode::SetVL | Opcode::SetVS if op.imm.is_none() && op.srcs.is_empty() => {
                    err("setvl/setvs needs an immediate or a source register".into());
                }
                Opcode::VSadAcc | Opcode::VMacAcc
                    if (op.srcs.len() != 3 || op.srcs[0].class != RegClass::Acc) =>
                {
                    err("accumulator op needs (acc, vec, vec) sources".into());
                }
                _ => {}
            }

            // Vector lengths must never exceed the architectural maximum.
            if let Some(vl) = op.vl_hint {
                if vl == 0 || vl > crate::reg::MAX_VL {
                    err(format!("vl hint {vl} outside 1..={}", crate::reg::MAX_VL));
                }
            }
        }
    }

    errors
}

/// Convenience wrapper: panic with a readable message if the program is
/// malformed.  Used by tests and by the kernel constructors in debug builds.
pub fn assert_well_formed(program: &Program) {
    let errors = verify_program(program);
    if !errors.is_empty() {
        let mut msg = format!("program '{}' failed verification:\n", program.name);
        for e in &errors {
            msg.push_str(&format!("  {e}\n"));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::opcode::{BrCond, Opcode};
    use crate::program::{BasicBlock, Op};
    use crate::reg::Reg;

    #[test]
    fn well_formed_program_passes() {
        let mut b = ProgramBuilder::new("ok");
        let x = b.imm(3);
        b.counted_loop("l", 4, |b, _| {
            b.addi(x, x, 1);
        });
        b.halt();
        let p = b.finish();
        assert!(verify_program(&p).is_empty());
    }

    #[test]
    fn missing_branch_target_is_reported() {
        let mut p = Program::new("bad");
        let mut blk = BasicBlock::new("entry", RegionId::SCALAR);
        blk.ops.push(
            Op::new(Opcode::Br(BrCond::Eq))
                .with_srcs(&[Reg::int(0), Reg::int(1)])
                .with_target("nowhere"),
        );
        p.blocks.push(blk);
        let errs = verify_program(&p);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("nowhere"));
    }

    #[test]
    fn wrong_dst_class_is_reported() {
        let mut p = Program::new("bad");
        let mut blk = BasicBlock::new("entry", RegionId::SCALAR);
        blk.ops.push(
            Op::new(Opcode::IAdd)
                .with_dst(Reg::simd(0))
                .with_srcs(&[Reg::int(0), Reg::int(1)]),
        );
        p.blocks.push(blk);
        let errs = verify_program(&p);
        assert!(errs.iter().any(|e| e.message.contains("expected")));
    }

    #[test]
    fn store_without_value_is_reported() {
        let mut p = Program::new("bad");
        let mut blk = BasicBlock::new("entry", RegionId::SCALAR);
        blk.ops
            .push(Op::new(Opcode::Store(crate::opcode::MemWidth::B4)).with_srcs(&[Reg::int(0)]));
        p.blocks.push(blk);
        let errs = verify_program(&p);
        assert!(errs.iter().any(|e| e.message.contains("value register")));
    }

    #[test]
    fn undeclared_region_is_reported() {
        let mut p = Program::new("bad");
        p.blocks.push(BasicBlock::new("entry", RegionId(7)));
        let errs = verify_program(&p);
        assert!(errs.iter().any(|e| e.message.contains("undeclared region")));
    }

    #[test]
    fn misplaced_branch_is_reported() {
        let mut p = Program::new("bad");
        let mut blk = BasicBlock::new("entry", RegionId::SCALAR);
        blk.ops.push(Op::new(Opcode::Jump).with_target("entry"));
        blk.ops
            .push(Op::new(Opcode::MovI).with_dst(Reg::int(0)).with_imm(1));
        p.blocks.push(blk);
        let errs = verify_program(&p);
        assert!(errs.iter().any(|e| e.message.contains("not the last")));
    }
}
