//! # vmv-isa — the Vector-µSIMD-VLIW instruction set
//!
//! This crate defines the three instruction sets studied in the paper
//! *"A Vector-µSIMD-VLIW Architecture for Multimedia Applications"*
//! (Salamí & Valero, ICPP 2005):
//!
//! 1. the **scalar VLIW** base ISA (integer, memory and branch operations),
//! 2. the **µSIMD** extension — 64-bit packed sub-word operations comparable
//!    to the integer subset of SSE/MMX,
//! 3. the **Vector-µSIMD** extension — a MOM-style short-vector ISA whose
//!    element operations are MMX-like packed operations, with vector
//!    registers of 16 × 64-bit words, 192-bit packed accumulators and the
//!    `VL`/`VS` control registers.
//!
//! It also provides the program representation shared by the static
//! scheduler (`vmv-sched`) and the cycle-level simulator (`vmv-sim`), an
//! ergonomic [`builder::ProgramBuilder`] used by the hand-written media
//! kernels, the HPL-PD-style [`latency::LatencyDescriptor`]s of Fig. 3, and
//! static well-formedness verification.

#![forbid(unsafe_code)]

pub mod accum;
pub mod builder;
pub mod latency;
pub mod opcode;
pub mod packed;
pub mod program;
pub mod reg;
pub mod verify;

pub use accum::Accumulator;
pub use builder::ProgramBuilder;
pub use latency::LatencyDescriptor;
pub use opcode::{BrCond, FuClass, LatClass, MemWidth, Opcode};
pub use packed::{Elem, Sat, Sign};
pub use program::{BasicBlock, BlockId, Op, Program, RegionId, RegionInfo};
pub use reg::{Reg, RegClass, RegFileSizes, SlotLayout, MAX_VL, NO_SLOT};
pub use verify::{assert_well_formed, verify_program, VerifyError};
