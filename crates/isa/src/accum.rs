//! Packed accumulators (192-bit), modeled after the MDMX-style accumulators
//! referenced in paper §3.1.
//!
//! A packed accumulator holds one wide sub-accumulator per packed lane:
//! * operating on 8-bit lanes, it holds eight 24-bit sub-accumulators;
//! * operating on 16-bit lanes, it holds four 48-bit sub-accumulators;
//! * operating on 32-bit lanes, it holds two 96-bit sub-accumulators.
//!
//! The architectural state is 192 bits regardless of the view.  For
//! simulation we keep each sub-accumulator in an `i64` (wide enough for the
//! 24- and 48-bit views used by the kernels; the 96-bit view is clamped to
//! `i64`, which the reduction operations never exceed in practice) and
//! saturate to the architectural width on every update so the observable
//! values match a real 192-bit implementation bit-for-bit.

use crate::packed::{self, Elem};

/// A 192-bit packed accumulator register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accumulator {
    /// Sub-accumulator values, lane 0 first.  Only the first `lanes()`
    /// entries for the element width in use are meaningful; unused entries
    /// stay at zero.
    lanes: [i64; 8],
}

impl Accumulator {
    /// A cleared accumulator (all sub-accumulators zero).
    pub const fn zero() -> Self {
        Accumulator { lanes: [0; 8] }
    }

    /// Clear every sub-accumulator.
    pub fn clear(&mut self) {
        self.lanes = [0; 8];
    }

    /// Architectural width, in bits, of one sub-accumulator for a given
    /// element view: 192 bits split evenly across the lanes.
    pub const fn sub_bits(e: Elem) -> u32 {
        192 / (e.lanes() as u32)
    }

    /// Read one sub-accumulator.
    pub fn lane(&self, i: usize) -> i64 {
        self.lanes[i]
    }

    /// Raw access to all 8 sub-accumulator slots.
    pub fn raw(&self) -> [i64; 8] {
        self.lanes
    }

    /// Overwrite one sub-accumulator (saturating to the architectural width
    /// of the given element view).
    pub fn set_lane(&mut self, e: Elem, i: usize, v: i64) {
        self.lanes[i] = clamp_to_bits(v, Self::sub_bits(e));
    }

    /// Accumulate `v` into sub-accumulator `i`, saturating at the
    /// architectural sub-accumulator width.
    pub fn accumulate(&mut self, e: Elem, i: usize, v: i64) {
        let bits = Self::sub_bits(e);
        let sum = self.lanes[i].saturating_add(v);
        self.lanes[i] = clamp_to_bits(sum, bits);
    }

    /// Accumulate the element-wise unsigned absolute differences of two
    /// packed words (the `SAD` operation of the paper's motion-estimation
    /// example, Fig. 4).  Uses the 8-bit element view.
    pub fn sad_accumulate_u8(&mut self, a: u64, b: u64) {
        for i in 0..8 {
            let x = packed::lane_u(a, Elem::B, i) as i64;
            let y = packed::lane_u(b, Elem::B, i) as i64;
            self.accumulate(Elem::B, i, (x - y).abs());
        }
    }

    /// Multiply-accumulate of signed 16-bit lanes: `acc[i] += a[i] * b[i]`.
    pub fn mac_i16(&mut self, a: u64, b: u64) {
        for i in 0..4 {
            let x = packed::lane_s(a, Elem::H, i);
            let y = packed::lane_s(b, Elem::H, i);
            self.accumulate(Elem::H, i, x * y);
        }
    }

    /// Accumulate signed 16-bit lanes without multiplication:
    /// `acc[i] += a[i]`.
    pub fn add_i16(&mut self, a: u64) {
        for i in 0..4 {
            self.accumulate(Elem::H, i, packed::lane_s(a, Elem::H, i));
        }
    }

    /// Accumulate unsigned 8-bit lanes: `acc[i] += a[i]`.
    pub fn add_u8(&mut self, a: u64) {
        for i in 0..8 {
            self.accumulate(Elem::B, i, packed::lane_u(a, Elem::B, i) as i64);
        }
    }

    /// Reduce (sum) every sub-accumulator into a single scalar.  This is the
    /// final cross-lane reduction that only one of the vector lanes performs
    /// (paper §3.2).
    pub fn reduce(&self) -> i64 {
        self.lanes.iter().copied().fold(0i64, i64::saturating_add)
    }
}

/// Saturate `v` to a signed two's-complement value of `bits` bits.
fn clamp_to_bits(v: i64, bits: u32) -> i64 {
    if bits >= 64 {
        return v;
    }
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    v.clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{pack_i16x4, pack_u8x8};

    #[test]
    fn sub_accumulator_widths() {
        assert_eq!(Accumulator::sub_bits(Elem::B), 24);
        assert_eq!(Accumulator::sub_bits(Elem::H), 48);
        assert_eq!(Accumulator::sub_bits(Elem::W), 96);
    }

    #[test]
    fn sad_accumulate_matches_manual_sum() {
        let mut acc = Accumulator::zero();
        let a = pack_u8x8([10, 20, 30, 40, 50, 60, 70, 80]);
        let b = pack_u8x8([80, 70, 60, 50, 40, 30, 20, 10]);
        acc.sad_accumulate_u8(a, b);
        acc.sad_accumulate_u8(a, b);
        let expect: i64 = 2 * (70 + 50 + 30 + 10 + 10 + 30 + 50 + 70);
        assert_eq!(acc.reduce(), expect);
    }

    #[test]
    fn mac_i16_accumulates_products() {
        let mut acc = Accumulator::zero();
        acc.mac_i16(pack_i16x4([2, -3, 4, 5]), pack_i16x4([10, 10, -10, 10]));
        acc.mac_i16(pack_i16x4([1, 1, 1, 1]), pack_i16x4([1, 1, 1, 1]));
        assert_eq!(acc.lane(0), 21);
        assert_eq!(acc.lane(1), -29);
        assert_eq!(acc.lane(2), -39);
        assert_eq!(acc.lane(3), 51);
        assert_eq!(acc.reduce(), 21 - 29 - 39 + 51);
    }

    #[test]
    fn accumulate_saturates_at_sub_width() {
        let mut acc = Accumulator::zero();
        // 24-bit signed max is 8_388_607.
        for _ in 0..40_000 {
            acc.accumulate(Elem::B, 0, 255);
        }
        assert_eq!(acc.lane(0), (1 << 23) - 1);
    }

    #[test]
    fn clear_resets_state() {
        let mut acc = Accumulator::zero();
        acc.add_u8(pack_u8x8([1; 8]));
        assert_eq!(acc.reduce(), 8);
        acc.clear();
        assert_eq!(acc.reduce(), 0);
        assert_eq!(acc, Accumulator::zero());
    }
}
