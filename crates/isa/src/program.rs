//! Program representation: operations, basic blocks, regions and programs.
//!
//! A *program* is the unit that the static scheduler consumes and the
//! simulator executes.  It is a list of basic blocks; each block belongs to a
//! *region* — either the scalar region (region 0) or one of the numbered
//! vector regions of the benchmark (paper §2, Table 1).  Region membership is
//! what lets the experiment driver account cycles and operations separately
//! for scalar and vector regions, exactly as the paper's evaluation does.

use std::collections::HashMap;
use std::fmt;

use crate::opcode::Opcode;
use crate::reg::Reg;

/// Identifier of a region within a benchmark.  Region 0 is always the scalar
/// (non-vectorized) region; regions 1.. are the vector regions in the order
/// of Table 1 (they map to R1..R3 of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl RegionId {
    pub const SCALAR: RegionId = RegionId(0);

    pub fn is_scalar(self) -> bool {
        self.0 == 0
    }

    pub fn is_vector(self) -> bool {
        self.0 != 0
    }
}

/// Descriptive metadata for one region of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    pub id: RegionId,
    /// Human-readable name, e.g. "Motion estimation" or "Forward DCT".
    pub name: String,
}

/// One machine operation (the paper reserves the term *operation* for each
/// independent machine operation coded into a VLIW instruction, §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    pub opcode: Opcode,
    /// Destination register, if the operation produces one.
    pub dst: Option<Reg>,
    /// Explicit source registers.  Memory operations put the address base
    /// register first; stores put the value register second; accumulator
    /// operations list the accumulator first (it is both read and written).
    pub srcs: Vec<Reg>,
    /// Immediate operand (address offset for memory operations, literal for
    /// `MovI`, shift amounts, lane indices, ...).
    pub imm: Option<i64>,
    /// Branch target label for control transfers.
    pub target: Option<String>,
    /// Compile-time known vector length for vector operations, obtained by
    /// the builder's simple data-flow analysis of `SetVL` (paper §3.3).
    /// `None` means the scheduler must assume the maximum vector length.
    pub vl_hint: Option<u32>,
    /// Compile-time known vector stride (in bytes) for vector memory
    /// operations, when the builder could determine it.  The *scheduler*
    /// always assumes stride one (paper §3.3); the hint is only used by
    /// tests and diagnostics.
    pub vs_hint: Option<i64>,
}

impl Op {
    pub fn new(opcode: Opcode) -> Self {
        Op {
            opcode,
            dst: None,
            srcs: Vec::new(),
            imm: None,
            target: None,
            vl_hint: None,
            vs_hint: None,
        }
    }

    pub fn with_dst(mut self, dst: Reg) -> Self {
        self.dst = Some(dst);
        self
    }

    pub fn with_srcs(mut self, srcs: &[Reg]) -> Self {
        self.srcs = srcs.to_vec();
        self
    }

    pub fn with_imm(mut self, imm: i64) -> Self {
        self.imm = Some(imm);
        self
    }

    pub fn with_target(mut self, target: impl Into<String>) -> Self {
        self.target = Some(target.into());
        self
    }

    /// All registers read by this operation, including the implicit
    /// control-register reads of vector operations.
    pub fn reads(&self) -> Vec<Reg> {
        let mut v = self.srcs.clone();
        if self.opcode.reads_vl() {
            v.push(Reg::vl());
        }
        if self.opcode.reads_vs() {
            v.push(Reg::vs());
        }
        v
    }

    /// The register written by this operation, if any.
    pub fn writes(&self) -> Option<Reg> {
        self.dst
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode.mnemonic())?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        for s in &self.srcs {
            write!(f, " {s}")?;
        }
        if let Some(i) = self.imm {
            write!(f, " #{i}")?;
        }
        if let Some(t) = &self.target {
            write!(f, " ->{t}")?;
        }
        Ok(())
    }
}

/// Identifier of a basic block within a program (its index).
pub type BlockId = usize;

/// A basic block: a label, a region, and a straight-line sequence of
/// operations terminated (optionally) by a branch.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    pub label: String,
    pub region: RegionId,
    pub ops: Vec<Op>,
}

impl BasicBlock {
    pub fn new(label: impl Into<String>, region: RegionId) -> Self {
        BasicBlock {
            label: label.into(),
            region,
            ops: Vec::new(),
        }
    }

    /// The terminating branch of the block, if it ends in one.
    pub fn terminator(&self) -> Option<&Op> {
        self.ops
            .last()
            .filter(|op| op.opcode.is_branch() || op.opcode == Opcode::Halt)
    }
}

/// A complete program: an ordered list of basic blocks (fall-through goes to
/// the next block in order) plus region metadata.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub name: String,
    pub blocks: Vec<BasicBlock>,
    pub regions: Vec<RegionInfo>,
}

impl Program {
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            blocks: Vec::new(),
            regions: vec![RegionInfo {
                id: RegionId::SCALAR,
                name: "scalar".to_string(),
            }],
        }
    }

    /// Map from label to block id.
    pub fn label_map(&self) -> HashMap<&str, BlockId> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.label.as_str(), i))
            .collect()
    }

    /// Find the block with the given label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.label == label)
    }

    /// Total static operation count (excluding `Nop`).
    pub fn static_op_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.ops.iter().filter(|o| o.opcode != Opcode::Nop).count())
            .sum()
    }

    /// All region infos, including the implicit scalar region.
    pub fn region_info(&self, id: RegionId) -> Option<&RegionInfo> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// Number of distinct regions referenced by the program's blocks.
    pub fn region_ids(&self) -> Vec<RegionId> {
        let mut ids: Vec<RegionId> = self.blocks.iter().map(|b| b.region).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Iterate over every operation in the program together with its block.
    pub fn iter_ops(&self) -> impl Iterator<Item = (BlockId, &Op)> {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.ops.iter().map(move |o| (i, o)))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {}", self.name)?;
        for block in &self.blocks {
            writeln!(f, "{}:  ; region {}", block.label, block.region.0)?;
            for op in &block.ops {
                writeln!(f, "    {op}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::{BrCond, Opcode};
    use crate::reg::Reg;

    fn tiny_program() -> Program {
        let mut p = Program::new("tiny");
        let mut b0 = BasicBlock::new("entry", RegionId::SCALAR);
        b0.ops
            .push(Op::new(Opcode::MovI).with_dst(Reg::int(0)).with_imm(5));
        b0.ops
            .push(Op::new(Opcode::MovI).with_dst(Reg::int(1)).with_imm(0));
        let mut b1 = BasicBlock::new("loop", RegionId(1));
        b1.ops.push(
            Op::new(Opcode::IAdd)
                .with_dst(Reg::int(1))
                .with_srcs(&[Reg::int(1), Reg::int(0)]),
        );
        b1.ops.push(
            Op::new(Opcode::Br(BrCond::Ne))
                .with_srcs(&[Reg::int(1), Reg::int(0)])
                .with_target("loop"),
        );
        let mut b2 = BasicBlock::new("exit", RegionId::SCALAR);
        b2.ops.push(Op::new(Opcode::Halt));
        p.blocks = vec![b0, b1, b2];
        p.regions.push(RegionInfo {
            id: RegionId(1),
            name: "loop region".into(),
        });
        p
    }

    #[test]
    fn label_lookup() {
        let p = tiny_program();
        assert_eq!(p.block_by_label("loop"), Some(1));
        assert_eq!(p.block_by_label("missing"), None);
        assert_eq!(p.label_map()["exit"], 2);
    }

    #[test]
    fn op_read_write_sets() {
        let op = Op::new(Opcode::IAdd)
            .with_dst(Reg::int(2))
            .with_srcs(&[Reg::int(0), Reg::int(1)]);
        assert_eq!(op.reads(), vec![Reg::int(0), Reg::int(1)]);
        assert_eq!(op.writes(), Some(Reg::int(2)));

        let vop = Op::new(Opcode::VLoad)
            .with_dst(Reg::vec(0))
            .with_srcs(&[Reg::int(3)]);
        let reads = vop.reads();
        assert!(reads.contains(&Reg::vl()));
        assert!(reads.contains(&Reg::vs()));
    }

    #[test]
    fn terminator_detection() {
        let p = tiny_program();
        assert!(p.blocks[0].terminator().is_none());
        assert!(p.blocks[1].terminator().is_some());
        assert!(p.blocks[2].terminator().is_some());
    }

    #[test]
    fn static_counts_and_regions() {
        let p = tiny_program();
        assert_eq!(p.static_op_count(), 5);
        assert_eq!(p.region_ids(), vec![RegionId(0), RegionId(1)]);
        assert!(p.region_info(RegionId(1)).is_some());
    }

    #[test]
    fn display_includes_labels_and_ops() {
        let p = tiny_program();
        let s = p.to_string();
        assert!(s.contains("entry:"));
        assert!(s.contains("loop:"));
        assert!(s.contains("movi"));
    }
}
