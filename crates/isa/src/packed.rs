//! Sub-word ("µSIMD") arithmetic on 64-bit packed words.
//!
//! A 64-bit word is interpreted as eight 8-bit, four 16-bit or two 32-bit
//! elements (paper §3.1).  The functions in this module implement the
//! element-wise semantics of the µSIMD opcodes; the same routines are reused
//! word-by-word by the Vector-µSIMD execution engine, which is exactly how
//! the paper describes the vector ISA ("a conventional vector ISA where each
//! operation is a MMX-like operation").
//!
//! All functions are pure and deterministic so they can be exercised directly
//! by unit tests and property-based tests.

/// Element width of a packed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Elem {
    /// Eight 8-bit elements per 64-bit word.
    B,
    /// Four 16-bit elements per 64-bit word.
    H,
    /// Two 32-bit elements per 64-bit word.
    W,
}

impl Elem {
    /// Number of elements packed into one 64-bit word.
    #[inline]
    pub const fn lanes(self) -> usize {
        match self {
            Elem::B => 8,
            Elem::H => 4,
            Elem::W => 2,
        }
    }

    /// Width of one element in bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        match self {
            Elem::B => 8,
            Elem::H => 16,
            Elem::W => 32,
        }
    }

    /// Width of one element in bytes.
    #[inline]
    pub const fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }
}

/// Saturation mode of a packed add/subtract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sat {
    /// Modular (wrap-around) arithmetic.
    Wrap,
    /// Signed saturating arithmetic.
    Signed,
    /// Unsigned saturating arithmetic.
    Unsigned,
}

/// Signedness selector for min/max/compare/pack operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    Signed,
    Unsigned,
}

// ---------------------------------------------------------------------------
// Lane extraction / insertion helpers
// ---------------------------------------------------------------------------

/// Extract lane `i` of `x` as an unsigned value.
#[inline]
pub fn lane_u(x: u64, e: Elem, i: usize) -> u64 {
    debug_assert!(i < e.lanes());
    let bits = e.bits();
    (x >> (i as u32 * bits)) & mask(bits)
}

/// Extract lane `i` of `x` as a sign-extended value.
#[inline]
pub fn lane_s(x: u64, e: Elem, i: usize) -> i64 {
    let bits = e.bits();
    let v = lane_u(x, e, i);
    sign_extend(v, bits)
}

/// Replace lane `i` of `x` with the low bits of `v`.
#[inline]
pub fn set_lane(x: u64, e: Elem, i: usize, v: u64) -> u64 {
    debug_assert!(i < e.lanes());
    let bits = e.bits();
    let m = mask(bits) << (i as u32 * bits);
    (x & !m) | ((v & mask(bits)) << (i as u32 * bits))
}

/// Bit mask with the low `bits` bits set.
#[inline]
pub const fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Sign-extend the low `bits` bits of `v`.
#[inline]
pub const fn sign_extend(v: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

/// Saturate a signed value to the signed range of an element.
#[inline]
pub fn sat_s(v: i64, e: Elem) -> u64 {
    let bits = e.bits();
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    (v.clamp(min, max) as u64) & mask(bits)
}

/// Saturate a signed value to the unsigned range of an element.
#[inline]
pub fn sat_u(v: i64, e: Elem) -> u64 {
    let bits = e.bits();
    let max = mask(bits) as i64;
    v.clamp(0, max) as u64
}

/// Build a packed word from a closure producing one lane at a time.
#[inline]
pub fn from_lanes(e: Elem, mut f: impl FnMut(usize) -> u64) -> u64 {
    let mut out = 0u64;
    for i in 0..e.lanes() {
        out = set_lane(out, e, i, f(i));
    }
    out
}

// ---------------------------------------------------------------------------
// SWAR helpers: whole-word constants and lane-mask algebra
// ---------------------------------------------------------------------------

impl Elem {
    /// Word with the most-significant bit of every lane set
    /// (`0x80…`, `0x8000…`, `0x80000000…`).
    #[inline]
    pub const fn msb_mask(self) -> u64 {
        match self {
            Elem::B => 0x8080_8080_8080_8080,
            Elem::H => 0x8000_8000_8000_8000,
            Elem::W => 0x8000_0000_8000_0000,
        }
    }

    /// Word with the least-significant bit of every lane set
    /// (`0x01…`, `0x0001…`).  Multiplying a sub-lane value by this
    /// broadcasts it to every lane.
    #[inline]
    pub const fn lsb_mask(self) -> u64 {
        match self {
            Elem::B => 0x0101_0101_0101_0101,
            Elem::H => 0x0001_0001_0001_0001,
            Elem::W => 0x0000_0001_0000_0001,
        }
    }
}

/// Spread a mask of per-lane MSBs into full lanes: `0x80 → 0xFF`, `0 → 0`.
#[inline]
const fn spread_msb(m: u64, e: Elem) -> u64 {
    // Per lane: 0x80 - 0x01 = 0x7F, OR 0x80 = 0xFF; zero lanes stay zero.
    // The subtraction never borrows across lanes.
    m | (m - (m >> (e.bits() - 1)))
}

/// Per-lane unsigned `x >= y` as a full-lane mask (all-ones / all-zero).
#[inline]
fn ge_u_mask(e: Elem, x: u64, y: u64) -> u64 {
    let h = e.msb_mask();
    // Compare the low w-1 bits borrow-free, then merge in the MSBs.
    let low_ge = ((x & !h) | h).wrapping_sub(y & !h) & h;
    let ge_h = (x & !y & h) | (!(x ^ y) & low_ge);
    spread_msb(ge_h, e)
}

/// Per-lane signed `x >= y` as a full-lane mask.
#[inline]
fn ge_s_mask(e: Elem, x: u64, y: u64) -> u64 {
    let h = e.msb_mask();
    ge_u_mask(e, x ^ h, y ^ h)
}

/// Broadcast the low bits of `v` to every lane of a packed word.
#[inline]
pub fn splat(e: Elem, v: u64) -> u64 {
    (v & mask(e.bits())).wrapping_mul(e.lsb_mask())
}

// ---------------------------------------------------------------------------
// Element-wise binary operations (SWAR: whole 64-bit words at a time, no
// per-lane loop; `lanewise` holds the one-lane-at-a-time reference versions)
// ---------------------------------------------------------------------------

/// Per-lane wrap-around addition (classic SWAR: add the low w-1 bits
/// carry-free, recompute the MSBs by parity).
#[inline]
fn swar_add_wrap(e: Elem, a: u64, b: u64) -> u64 {
    let h = e.msb_mask();
    ((a & !h).wrapping_add(b & !h)) ^ ((a ^ b) & h)
}

/// Per-lane wrap-around subtraction.
#[inline]
fn swar_sub_wrap(e: Elem, a: u64, b: u64) -> u64 {
    let h = e.msb_mask();
    ((a | h).wrapping_sub(b & !h)) ^ ((a ^ b ^ h) & h)
}

/// Per-lane saturation bound for signed overflow: `MAX` (0x7F…) when the
/// first operand is non-negative, `MIN` (0x80…) when it is negative.
#[inline]
fn swar_signed_bound(e: Elem, a: u64) -> u64 {
    // 0x7F + sign-bit = 0x7F or 0x80 per lane, carry-free.
    !e.msb_mask() + ((a & e.msb_mask()) >> (e.bits() - 1))
}

/// Packed addition with the requested saturation behaviour.
pub fn padd(e: Elem, sat: Sat, a: u64, b: u64) -> u64 {
    let h = e.msb_mask();
    let s = swar_add_wrap(e, a, b);
    match sat {
        Sat::Wrap => s,
        Sat::Unsigned => {
            // Carry out of a lane means the true sum exceeded the lane.
            let carry = ((a & b) | ((a | b) & !s)) & h;
            s | spread_msb(carry, e)
        }
        Sat::Signed => {
            // Overflow: operands agree in sign, result disagrees.
            let ovf = spread_msb(!(a ^ b) & (a ^ s) & h, e);
            (s & !ovf) | (swar_signed_bound(e, a) & ovf)
        }
    }
}

/// Packed subtraction with the requested saturation behaviour.
pub fn psub(e: Elem, sat: Sat, a: u64, b: u64) -> u64 {
    let h = e.msb_mask();
    let d = swar_sub_wrap(e, a, b);
    match sat {
        Sat::Wrap => d,
        Sat::Unsigned => {
            // Borrow into a lane means the true difference was negative.
            let borrow = ((!a & b) | ((!a | b) & d)) & h;
            d & !spread_msb(borrow, e)
        }
        Sat::Signed => {
            // Overflow: operands disagree in sign, result disagrees with a.
            let ovf = spread_msb((a ^ b) & (a ^ d) & h, e);
            (d & !ovf) | (swar_signed_bound(e, a) & ovf)
        }
    }
}

/// Packed multiply keeping the low half of each product (signed semantics,
/// identical bits to unsigned low half).
pub fn pmul_lo(e: Elem, a: u64, b: u64) -> u64 {
    from_lanes(e, |i| {
        (lane_s(a, e, i).wrapping_mul(lane_s(b, e, i))) as u64
    })
}

/// Packed signed multiply keeping the high half of each product.
pub fn pmul_hi(e: Elem, a: u64, b: u64) -> u64 {
    let bits = e.bits();
    from_lanes(e, |i| {
        let p = lane_s(a, e, i) * lane_s(b, e, i);
        ((p >> bits) as u64) & mask(bits)
    })
}

/// `pmaddwd`-style multiply-add: multiplies 16-bit lanes and adds adjacent
/// pairs producing 32-bit results (two per word).
pub fn pmadd_h(a: u64, b: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..2 {
        let lo = lane_s(a, Elem::H, 2 * i) * lane_s(b, Elem::H, 2 * i);
        let hi = lane_s(a, Elem::H, 2 * i + 1) * lane_s(b, Elem::H, 2 * i + 1);
        out = set_lane(out, Elem::W, i, (lo + hi) as u64);
    }
    out
}

/// Packed unsigned average with rounding: `(a + b + 1) >> 1`, via the
/// carry-free identity `avg_ceil(a, b) = (a | b) - ((a ^ b) >> 1)`.
pub fn pavg_u(e: Elem, a: u64, b: u64) -> u64 {
    let h = e.msb_mask();
    (a | b) - (((a ^ b) >> 1) & !h)
}

/// Packed minimum.
pub fn pmin(e: Elem, sign: Sign, a: u64, b: u64) -> u64 {
    let m = match sign {
        Sign::Unsigned => ge_u_mask(e, a, b),
        Sign::Signed => ge_s_mask(e, a, b),
    };
    (b & m) | (a & !m)
}

/// Packed maximum.
pub fn pmax(e: Elem, sign: Sign, a: u64, b: u64) -> u64 {
    let m = match sign {
        Sign::Unsigned => ge_u_mask(e, a, b),
        Sign::Signed => ge_s_mask(e, a, b),
    };
    (a & m) | (b & !m)
}

/// Packed absolute difference of unsigned elements: exactly one of the two
/// saturating differences is non-zero per lane.
pub fn pabsdiff_u(e: Elem, a: u64, b: u64) -> u64 {
    psub(e, Sat::Unsigned, a, b) | psub(e, Sat::Unsigned, b, a)
}

/// Sum of absolute differences of the eight unsigned bytes of `a` and `b`.
/// Returns the scalar sum (fits in 16 bits: 8 × 255 = 2040).
pub fn psad_u8(a: u64, b: u64) -> u64 {
    let d = pabsdiff_u(Elem::B, a, b);
    // Fold byte pairs into 16-bit lanes (each ≤ 510), then sum the four
    // 16-bit lanes into the top lane of the product (≤ 2040, carry-free).
    let pairs = (d & 0x00FF_00FF_00FF_00FF) + ((d >> 8) & 0x00FF_00FF_00FF_00FF);
    pairs.wrapping_mul(Elem::H.lsb_mask()) >> 48
}

/// Packed compare-equal: each lane becomes all-ones when equal, zero otherwise.
pub fn pcmp_eq(e: Elem, a: u64, b: u64) -> u64 {
    let h = e.msb_mask();
    let t = a ^ b;
    // A lane is non-zero iff its low bits carry into the MSB position when
    // 0x7F… is added, or its own MSB is set.
    let nonzero = (((t & !h) + !h) | t) & h;
    spread_msb(nonzero ^ h, e)
}

/// Packed signed compare-greater-than: `a > b ⟺ !(b >= a)`.
pub fn pcmp_gt(e: Elem, a: u64, b: u64) -> u64 {
    !ge_s_mask(e, b, a)
}

// ---------------------------------------------------------------------------
// Shifts (SWAR: one whole-word shift plus a lane-boundary mask)
// ---------------------------------------------------------------------------

/// Packed logical left shift by `amount` bits.
pub fn pshl(e: Elem, a: u64, amount: u32) -> u64 {
    let bits = e.bits();
    if amount >= bits {
        return 0;
    }
    (a << amount) & splat(e, mask(bits) << amount)
}

/// Packed logical right shift by `amount` bits.
pub fn pshr_l(e: Elem, a: u64, amount: u32) -> u64 {
    if amount >= e.bits() {
        return 0;
    }
    (a >> amount) & splat(e, mask(e.bits()) >> amount)
}

/// Packed arithmetic right shift by `amount` bits.
pub fn pshr_a(e: Elem, a: u64, amount: u32) -> u64 {
    let bits = e.bits();
    let amount = amount.min(bits - 1);
    let logical = (a >> amount) & splat(e, mask(bits) >> amount);
    if amount == 0 {
        return logical;
    }
    // Replicate each sign bit into the `amount` vacated top positions.
    let sign_lsb = (a & e.msb_mask()) >> (bits - 1);
    let fill = sign_lsb.wrapping_mul((1 << amount) - 1) << (bits - amount);
    logical | fill
}

// ---------------------------------------------------------------------------
// Pack / unpack
// ---------------------------------------------------------------------------

/// Pack the lanes of two source words (`a` low half, `b` high half) into a
/// word of the next narrower element width, saturating each value.
///
/// `e` is the *source* element width (`H` packs 16→8, `W` packs 32→16).
pub fn ppack(e: Elem, sign: Sign, a: u64, b: u64) -> u64 {
    let narrow = match e {
        Elem::H => Elem::B,
        Elem::W => Elem::H,
        Elem::B => panic!("cannot pack 8-bit elements narrower"),
    };
    let n = e.lanes();
    from_lanes(narrow, |i| {
        let src = if i < n { a } else { b };
        let j = if i < n { i } else { i - n };
        let v = lane_s(src, e, j);
        match sign {
            Sign::Signed => sat_s(v, narrow),
            Sign::Unsigned => sat_u(v, narrow),
        }
    })
}

/// Interleave the low-half lanes of `a` and `b`, widening the element count:
/// result lane 2k = a lane k, lane 2k+1 = b lane k (classic `punpckl`).
pub fn punpack_lo(e: Elem, a: u64, b: u64) -> u64 {
    from_lanes(e, |i| {
        let src = if i % 2 == 0 { a } else { b };
        lane_u(src, e, i / 2)
    })
}

/// Interleave the high-half lanes of `a` and `b` (classic `punpckh`).
pub fn punpack_hi(e: Elem, a: u64, b: u64) -> u64 {
    let half = e.lanes() / 2;
    from_lanes(e, |i| {
        let src = if i % 2 == 0 { a } else { b };
        lane_u(src, e, half + i / 2)
    })
}

/// Widen the low half of the unsigned lanes of `a` into the next wider
/// element width (zero extension).  `e` is the source width.
pub fn pwiden_lo_u(e: Elem, a: u64) -> u64 {
    let wide = match e {
        Elem::B => Elem::H,
        Elem::H => Elem::W,
        Elem::W => panic!("cannot widen 32-bit elements"),
    };
    from_lanes(wide, |i| lane_u(a, e, i))
}

/// Widen the high half of the unsigned lanes of `a` into the next wider width.
pub fn pwiden_hi_u(e: Elem, a: u64) -> u64 {
    let wide = match e {
        Elem::B => Elem::H,
        Elem::H => Elem::W,
        Elem::W => panic!("cannot widen 32-bit elements"),
    };
    let half = e.lanes() / 2;
    from_lanes(wide, |i| lane_u(a, e, half + i))
}

/// Widen the low half of the signed lanes of `a` (sign extension).
pub fn pwiden_lo_s(e: Elem, a: u64) -> u64 {
    let wide = match e {
        Elem::B => Elem::H,
        Elem::H => Elem::W,
        Elem::W => panic!("cannot widen 32-bit elements"),
    };
    from_lanes(wide, |i| (lane_s(a, e, i) as u64) & mask(wide.bits()))
}

/// Widen the high half of the signed lanes of `a` (sign extension).
pub fn pwiden_hi_s(e: Elem, a: u64) -> u64 {
    let wide = match e {
        Elem::B => Elem::H,
        Elem::H => Elem::W,
        Elem::W => panic!("cannot widen 32-bit elements"),
    };
    let half = e.lanes() / 2;
    from_lanes(wide, |i| {
        (lane_s(a, e, half + i) as u64) & mask(wide.bits())
    })
}

// ---------------------------------------------------------------------------
// Lane-wise reference implementations
// ---------------------------------------------------------------------------

/// One-lane-at-a-time reference implementations of every operation that has
/// a SWAR fast path above.  These are the original (obviously correct)
/// routines; the unit tests here and the seeded property tests in
/// `tests/properties.rs` check the SWAR versions against them on random
/// words.  They are not called on any hot path.
pub mod lanewise {
    use super::*;

    /// Packed addition with the requested saturation behaviour.
    pub fn padd(e: Elem, sat: Sat, a: u64, b: u64) -> u64 {
        from_lanes(e, |i| match sat {
            Sat::Wrap => lane_u(a, e, i).wrapping_add(lane_u(b, e, i)),
            Sat::Signed => sat_s(lane_s(a, e, i) + lane_s(b, e, i), e),
            Sat::Unsigned => sat_u(lane_u(a, e, i) as i64 + lane_u(b, e, i) as i64, e),
        })
    }

    /// Packed subtraction with the requested saturation behaviour.
    pub fn psub(e: Elem, sat: Sat, a: u64, b: u64) -> u64 {
        from_lanes(e, |i| match sat {
            Sat::Wrap => lane_u(a, e, i).wrapping_sub(lane_u(b, e, i)),
            Sat::Signed => sat_s(lane_s(a, e, i) - lane_s(b, e, i), e),
            Sat::Unsigned => sat_u(lane_u(a, e, i) as i64 - lane_u(b, e, i) as i64, e),
        })
    }

    /// Packed unsigned average with rounding.
    pub fn pavg_u(e: Elem, a: u64, b: u64) -> u64 {
        from_lanes(e, |i| (lane_u(a, e, i) + lane_u(b, e, i) + 1) >> 1)
    }

    /// Packed minimum.
    pub fn pmin(e: Elem, sign: Sign, a: u64, b: u64) -> u64 {
        from_lanes(e, |i| match sign {
            Sign::Signed => {
                let v = lane_s(a, e, i).min(lane_s(b, e, i));
                (v as u64) & mask(e.bits())
            }
            Sign::Unsigned => lane_u(a, e, i).min(lane_u(b, e, i)),
        })
    }

    /// Packed maximum.
    pub fn pmax(e: Elem, sign: Sign, a: u64, b: u64) -> u64 {
        from_lanes(e, |i| match sign {
            Sign::Signed => {
                let v = lane_s(a, e, i).max(lane_s(b, e, i));
                (v as u64) & mask(e.bits())
            }
            Sign::Unsigned => lane_u(a, e, i).max(lane_u(b, e, i)),
        })
    }

    /// Packed absolute difference of unsigned elements.
    pub fn pabsdiff_u(e: Elem, a: u64, b: u64) -> u64 {
        from_lanes(e, |i| {
            let x = lane_u(a, e, i) as i64;
            let y = lane_u(b, e, i) as i64;
            (x - y).unsigned_abs() & mask(e.bits())
        })
    }

    /// Sum of absolute differences of the eight unsigned bytes.
    pub fn psad_u8(a: u64, b: u64) -> u64 {
        let mut sum = 0u64;
        for i in 0..8 {
            let x = lane_u(a, Elem::B, i) as i64;
            let y = lane_u(b, Elem::B, i) as i64;
            sum += (x - y).unsigned_abs();
        }
        sum
    }

    /// Packed compare-equal.
    pub fn pcmp_eq(e: Elem, a: u64, b: u64) -> u64 {
        from_lanes(e, |i| {
            if lane_u(a, e, i) == lane_u(b, e, i) {
                mask(e.bits())
            } else {
                0
            }
        })
    }

    /// Packed signed compare-greater-than.
    pub fn pcmp_gt(e: Elem, a: u64, b: u64) -> u64 {
        from_lanes(e, |i| {
            if lane_s(a, e, i) > lane_s(b, e, i) {
                mask(e.bits())
            } else {
                0
            }
        })
    }

    /// Packed logical left shift by `amount` bits.
    pub fn pshl(e: Elem, a: u64, amount: u32) -> u64 {
        let bits = e.bits();
        if amount >= bits {
            return 0;
        }
        from_lanes(e, |i| (lane_u(a, e, i) << amount) & mask(bits))
    }

    /// Packed logical right shift by `amount` bits.
    pub fn pshr_l(e: Elem, a: u64, amount: u32) -> u64 {
        if amount >= e.bits() {
            return 0;
        }
        from_lanes(e, |i| lane_u(a, e, i) >> amount)
    }

    /// Packed arithmetic right shift by `amount` bits.
    pub fn pshr_a(e: Elem, a: u64, amount: u32) -> u64 {
        let bits = e.bits();
        let amount = amount.min(bits - 1);
        from_lanes(e, |i| ((lane_s(a, e, i) >> amount) as u64) & mask(bits))
    }

    /// Broadcast the low bits of `v` to every lane.
    pub fn splat(e: Elem, v: u64) -> u64 {
        from_lanes(e, |_| v)
    }
}

// ---------------------------------------------------------------------------
// Conversions between packed words and Rust slices (used by the workload
// generators, the reference implementations and the tests).
// ---------------------------------------------------------------------------

/// Pack eight unsigned bytes into a 64-bit word (lane 0 = lowest byte).
pub fn pack_u8x8(v: [u8; 8]) -> u64 {
    u64::from_le_bytes(v)
}

/// Unpack a 64-bit word into eight unsigned bytes.
pub fn unpack_u8x8(x: u64) -> [u8; 8] {
    x.to_le_bytes()
}

/// Pack four signed 16-bit values into a 64-bit word.
pub fn pack_i16x4(v: [i16; 4]) -> u64 {
    let mut out = 0u64;
    for (i, &e) in v.iter().enumerate() {
        out = set_lane(out, Elem::H, i, e as u16 as u64);
    }
    out
}

/// Unpack a 64-bit word into four signed 16-bit values.
pub fn unpack_i16x4(x: u64) -> [i16; 4] {
    let mut out = [0i16; 4];
    for (i, o) in out.iter_mut().enumerate() {
        *o = lane_u(x, Elem::H, i) as u16 as i16;
    }
    out
}

/// Pack two signed 32-bit values into a 64-bit word.
pub fn pack_i32x2(v: [i32; 2]) -> u64 {
    let mut out = 0u64;
    for (i, &e) in v.iter().enumerate() {
        out = set_lane(out, Elem::W, i, e as u32 as u64);
    }
    out
}

/// Unpack a 64-bit word into two signed 32-bit values.
pub fn unpack_i32x2(x: u64) -> [i32; 2] {
    [
        lane_u(x, Elem::W, 0) as u32 as i32,
        lane_u(x, Elem::W, 1) as u32 as i32,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_roundtrip_b() {
        let w = pack_u8x8([1, 2, 3, 4, 5, 250, 0, 255]);
        assert_eq!(lane_u(w, Elem::B, 0), 1);
        assert_eq!(lane_u(w, Elem::B, 5), 250);
        assert_eq!(lane_u(w, Elem::B, 7), 255);
        assert_eq!(lane_s(w, Elem::B, 7), -1);
    }

    #[test]
    fn lane_roundtrip_h() {
        let w = pack_i16x4([100, -100, 32767, -32768]);
        assert_eq!(lane_s(w, Elem::H, 0), 100);
        assert_eq!(lane_s(w, Elem::H, 1), -100);
        assert_eq!(lane_s(w, Elem::H, 2), 32767);
        assert_eq!(lane_s(w, Elem::H, 3), -32768);
        assert_eq!(unpack_i16x4(w), [100, -100, 32767, -32768]);
    }

    #[test]
    fn set_lane_preserves_others() {
        let w = pack_i16x4([1, 2, 3, 4]);
        let w2 = set_lane(w, Elem::H, 2, 0xFFFF);
        assert_eq!(unpack_i16x4(w2), [1, 2, -1, 4]);
    }

    #[test]
    fn padd_wrap_and_saturate() {
        let a = pack_u8x8([200, 100, 0, 0, 0, 0, 0, 0]);
        let b = pack_u8x8([100, 100, 0, 0, 0, 0, 0, 0]);
        let wrap = padd(Elem::B, Sat::Wrap, a, b);
        assert_eq!(unpack_u8x8(wrap)[0], 44); // 300 mod 256
        let sat = padd(Elem::B, Sat::Unsigned, a, b);
        assert_eq!(unpack_u8x8(sat)[0], 255);
        assert_eq!(unpack_u8x8(sat)[1], 200);
    }

    #[test]
    fn padd_signed_saturate_h() {
        let a = pack_i16x4([32000, -32000, 1, -1]);
        let b = pack_i16x4([2000, -2000, 1, -1]);
        let r = padd(Elem::H, Sat::Signed, a, b);
        assert_eq!(unpack_i16x4(r), [32767, -32768, 2, -2]);
    }

    #[test]
    fn psub_unsigned_saturates_at_zero() {
        let a = pack_u8x8([10, 20, 0, 0, 0, 0, 0, 0]);
        let b = pack_u8x8([20, 10, 0, 0, 0, 0, 0, 0]);
        let r = psub(Elem::B, Sat::Unsigned, a, b);
        assert_eq!(unpack_u8x8(r)[0], 0);
        assert_eq!(unpack_u8x8(r)[1], 10);
    }

    #[test]
    fn pmul_lo_hi_h() {
        let a = pack_i16x4([300, -300, 2, 1000]);
        let b = pack_i16x4([300, 300, -2, 1000]);
        let lo = pmul_lo(Elem::H, a, b);
        let hi = pmul_hi(Elem::H, a, b);
        // 300*300 = 90000 = 0x15F90 → lo 0x5F90 (24464 unsigned → as i16 24464), hi 0x1.
        assert_eq!(lane_u(lo, Elem::H, 0), 0x5F90);
        assert_eq!(lane_u(hi, Elem::H, 0), 0x1);
        // -300*300 = -90000 → hi = -2 (0xFFFE)
        assert_eq!(lane_s(hi, Elem::H, 1), -2);
        assert_eq!(lane_s(lo, Elem::H, 2), -4);
        // 1000*1000 = 1_000_000; hi = 15
        assert_eq!(lane_s(hi, Elem::H, 3), 15);
    }

    #[test]
    fn pmadd_pairs() {
        let a = pack_i16x4([1, 2, 3, 4]);
        let b = pack_i16x4([5, 6, 7, 8]);
        let r = pmadd_h(a, b);
        assert_eq!(unpack_i32x2(r), [5 + 2 * 6, 3 * 7 + 4 * 8]);
    }

    #[test]
    fn pavg_rounds_up() {
        let a = pack_u8x8([1, 2, 255, 0, 0, 0, 0, 0]);
        let b = pack_u8x8([2, 2, 255, 0, 0, 0, 0, 0]);
        let r = pavg_u(Elem::B, a, b);
        assert_eq!(unpack_u8x8(r)[0], 2);
        assert_eq!(unpack_u8x8(r)[1], 2);
        assert_eq!(unpack_u8x8(r)[2], 255);
    }

    #[test]
    fn psad_matches_scalar() {
        let a = pack_u8x8([10, 0, 255, 7, 1, 2, 3, 4]);
        let b = pack_u8x8([0, 10, 0, 7, 4, 3, 2, 1]);
        let expect: u64 = [10u64, 10, 255, 0, 3, 1, 1, 3].iter().sum();
        assert_eq!(psad_u8(a, b), expect);
    }

    #[test]
    fn min_max_signed_unsigned() {
        let a = pack_u8x8([0, 255, 128, 1, 0, 0, 0, 0]);
        let b = pack_u8x8([255, 0, 127, 2, 0, 0, 0, 0]);
        let minu = pmin(Elem::B, Sign::Unsigned, a, b);
        let maxs = pmax(Elem::B, Sign::Signed, a, b);
        assert_eq!(unpack_u8x8(minu)[0], 0);
        assert_eq!(unpack_u8x8(minu)[2], 127);
        // signed: 128 is -128, 127 is max
        assert_eq!(unpack_u8x8(maxs)[2], 127);
    }

    #[test]
    fn shifts() {
        let a = pack_i16x4([-4, 4, 1024, -1024]);
        assert_eq!(unpack_i16x4(pshr_a(Elem::H, a, 1)), [-2, 2, 512, -512]);
        assert_eq!(unpack_i16x4(pshl(Elem::H, a, 2)), [-16, 16, 4096, -4096]);
        let u = pshr_l(Elem::H, pack_i16x4([-4, 4, 0, 0]), 1);
        assert_eq!(lane_u(u, Elem::H, 0), 0x7FFE);
    }

    #[test]
    fn pack_saturates() {
        let a = pack_i16x4([300, -300, 100, -100]);
        let b = pack_i16x4([0, 255, 256, -1]);
        let packed_u = ppack(Elem::H, Sign::Unsigned, a, b);
        assert_eq!(unpack_u8x8(packed_u), [255, 0, 100, 0, 0, 255, 255, 0]);
        let packed_s = ppack(Elem::H, Sign::Signed, a, b);
        assert_eq!(lane_s(packed_s, Elem::B, 0), 127);
        assert_eq!(lane_s(packed_s, Elem::B, 1), -128);
    }

    #[test]
    fn unpack_interleaves() {
        let a = pack_u8x8([1, 2, 3, 4, 5, 6, 7, 8]);
        let b = pack_u8x8([11, 12, 13, 14, 15, 16, 17, 18]);
        let lo = punpack_lo(Elem::B, a, b);
        assert_eq!(unpack_u8x8(lo), [1, 11, 2, 12, 3, 13, 4, 14]);
        let hi = punpack_hi(Elem::B, a, b);
        assert_eq!(unpack_u8x8(hi), [5, 15, 6, 16, 7, 17, 8, 18]);
    }

    #[test]
    fn widen_lanes() {
        let a = pack_u8x8([1, 2, 3, 4, 250, 251, 252, 253]);
        let lo = pwiden_lo_u(Elem::B, a);
        assert_eq!(unpack_i16x4(lo), [1, 2, 3, 4]);
        let hi = pwiden_hi_u(Elem::B, a);
        assert_eq!(unpack_i16x4(hi), [250, 251, 252, 253]);
        let s = pwiden_lo_s(Elem::B, pack_u8x8([255, 1, 128, 0, 0, 0, 0, 0]));
        assert_eq!(unpack_i16x4(s), [-1, 1, -128, 0]);
    }

    #[test]
    fn compare_masks() {
        let a = pack_i16x4([1, 5, -3, 0]);
        let b = pack_i16x4([1, 2, -1, 0]);
        let eq = pcmp_eq(Elem::H, a, b);
        assert_eq!(unpack_i16x4(eq), [-1, 0, 0, -1]);
        let gt = pcmp_gt(Elem::H, a, b);
        assert_eq!(unpack_i16x4(gt), [0, -1, 0, 0]);
    }

    #[test]
    fn splat_broadcasts() {
        assert_eq!(splat(Elem::B, 0xAB), 0xABABABABABABABAB);
        assert_eq!(splat(Elem::H, 0x1234), 0x1234123412341234);
        assert_eq!(splat(Elem::W, 0x89ABCDEF), 0x89ABCDEF89ABCDEF);
    }

    #[test]
    fn swar_matches_lanewise_reference() {
        // A cheap deterministic word generator (the seeded property tests
        // in tests/properties.rs add random coverage on top).
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut words: Vec<u64> = (0..64).map(|_| next()).collect();
        words.extend([0, u64::MAX, 0x8080_8080_8080_8080, 0x7F7F_7F7F_7F7F_7F7F]);
        for e in [Elem::B, Elem::H, Elem::W] {
            for &a in &words {
                for &b in &words[..8] {
                    for sat in [Sat::Wrap, Sat::Signed, Sat::Unsigned] {
                        assert_eq!(padd(e, sat, a, b), lanewise::padd(e, sat, a, b));
                        assert_eq!(psub(e, sat, a, b), lanewise::psub(e, sat, a, b));
                    }
                    for sign in [Sign::Signed, Sign::Unsigned] {
                        assert_eq!(pmin(e, sign, a, b), lanewise::pmin(e, sign, a, b));
                        assert_eq!(pmax(e, sign, a, b), lanewise::pmax(e, sign, a, b));
                    }
                    assert_eq!(pavg_u(e, a, b), lanewise::pavg_u(e, a, b));
                    assert_eq!(pabsdiff_u(e, a, b), lanewise::pabsdiff_u(e, a, b));
                    assert_eq!(pcmp_eq(e, a, b), lanewise::pcmp_eq(e, a, b));
                    assert_eq!(pcmp_gt(e, a, b), lanewise::pcmp_gt(e, a, b));
                    assert_eq!(psad_u8(a, b), lanewise::psad_u8(a, b));
                }
                for amount in 0..=e.bits() {
                    assert_eq!(pshl(e, a, amount), lanewise::pshl(e, a, amount));
                    assert_eq!(pshr_l(e, a, amount), lanewise::pshr_l(e, a, amount));
                    assert_eq!(pshr_a(e, a, amount), lanewise::pshr_a(e, a, amount));
                }
                assert_eq!(splat(e, a), lanewise::splat(e, a));
            }
        }
    }

    #[test]
    fn absdiff_unsigned() {
        let a = pack_u8x8([10, 250, 0, 0, 0, 0, 0, 0]);
        let b = pack_u8x8([250, 10, 0, 0, 0, 0, 0, 0]);
        let r = pabsdiff_u(Elem::B, a, b);
        assert_eq!(unpack_u8x8(r)[0], 240);
        assert_eq!(unpack_u8x8(r)[1], 240);
    }
}
