//! # vmv-obs — pipeline telemetry for the whole workspace
//!
//! The bottom layer of the observability stack: a process-wide [`Recorder`]
//! of named **counters**, nanosecond **histograms** (fixed log2 buckets) and
//! scoped **spans** (timer guards), designed so the rest of the workspace
//! can instrument its hot layers without paying for it when nobody is
//! looking:
//!
//! * recording is gated on one relaxed atomic enable flag — every
//!   `add`/`span` call starts with a single relaxed load and a predictable
//!   branch, so a disabled recorder costs (almost) nothing in the compile
//!   and simulate paths;
//! * the metric set is a closed enum ([`Counter`], [`SpanKind`]), so there
//!   is no registration, no hashing and no allocation on the hot path —
//!   each metric is one `AtomicU64` (or a fixed array of them) bumped with
//!   relaxed ordering;
//! * [`snapshot`] freezes everything into a plain-data [`Snapshot`] that
//!   renders to canonical single-line JSON via the in-tree [`json`] module
//!   (which moved here from `vmv-sweep` so every crate below the sweep
//!   layer can emit telemetry; `vmv_sweep::json` re-exports it unchanged).
//!
//! The sweep executor, compile cache, list scheduler, memory hierarchy and
//! result store all report into this crate; `sweep --metrics`, the `bench`
//! trajectory entries and the future sweep service surface the snapshots.

#![forbid(unsafe_code)]

pub mod hist;
pub mod json;
pub mod recorder;
pub mod snapshot;

pub use hist::{bucket_floor, bucket_of, HistSnapshot, BUCKETS};
pub use recorder::{
    add, enabled, incr, record_ns, record_value, reset, set_enabled, snapshot, span, worker_record,
    Counter, Recorder, SpanGuard, SpanKind, ValueHist, MAX_WORKERS,
};
pub use snapshot::{Snapshot, WorkerSnapshot};
