//! Frozen recorder state and its canonical JSON form.
//!
//! A [`Snapshot`] is plain data — no atomics — produced by
//! [`crate::recorder::Recorder::snapshot`] and rendered with the in-tree
//! [`crate::json`] value type, so `sweep --metrics`, the bench trajectory
//! and tests all share one schema:
//!
//! ```json
//! {"schema":"vmv-metrics/1","enabled":true,
//!  "cache_hit_rate":0.75,
//!  "counters":{"cache_hits":3,...},
//!  "spans":{"job_compile_ns":{"count":4,"sum_ns":812345,"buckets":[0,1,...]}},
//!  "hists":{"replay_batch_width":{"count":12,"sum":48,"buckets":[0,0,0,12]}},
//!  "workers":[{"worker":0,"jobs":4,"busy_ns":812345}]}
//! ```
//!
//! `cache_hit_rate` (hits / lookups), `trace_replay_rate` (replays /
//! completed simulations) and `mean_batch_width` (variants per batched
//! replay walk) are derived and re-derived on parse, so the schema stays
//! redundancy-free; consumers that only want the headline numbers never
//! have to do arithmetic.  The `hists` section (plain value histograms, no
//! nanosecond unit) was added after the schema shipped; documents without
//! it parse to an empty section, so old snapshots stay readable.

use crate::hist::HistSnapshot;
use crate::json::{Json, JsonError};

/// Identifies the snapshot schema in every rendered document.
pub const SCHEMA: &str = "vmv-metrics/1";

/// One worker's lifetime totals from the sweep executor pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSnapshot {
    pub worker: usize,
    pub jobs: u64,
    pub busy_ns: u64,
}

/// A frozen view of a recorder: every counter (in declaration order),
/// every span histogram, and the per-worker totals that saw activity.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub enabled: bool,
    pub counters: Vec<(String, u64)>,
    pub spans: Vec<(String, HistSnapshot)>,
    /// Plain value histograms (dimensionless samples, e.g. batch widths).
    pub hists: Vec<(String, HistSnapshot)>,
    pub workers: Vec<WorkerSnapshot>,
}

impl Snapshot {
    /// Look up a counter by its snake_case name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a span histogram by name.
    pub fn span(&self, name: &str) -> Option<&HistSnapshot> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Look up a value histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Compile-cache hit rate in [0, 1]; `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits = self.counter("cache_hits")?;
        let misses = self.counter("cache_misses")?;
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Fraction of completed simulations served by trace replay instead of
    /// functional execution, in [0, 1]; `None` before any simulation.
    pub fn trace_replay_rate(&self) -> Option<f64> {
        let replays = self.counter("trace_replays")?;
        let executed = self.counter("sim_runs")?;
        let total = replays + executed;
        (total > 0).then(|| replays as f64 / total as f64)
    }

    /// Mean number of variants retimed per batched replay walk; `None`
    /// before any batch.
    pub fn mean_batch_width(&self) -> Option<f64> {
        let h = self.hist("replay_batch_width")?;
        (h.count > 0).then(|| h.sum as f64 / h.count as f64)
    }

    /// Full canonical JSON document: every counter (zero or not), every
    /// span, schema tag first.
    pub fn to_json(&self) -> Json {
        self.render(false)
    }

    /// Compact variant for embedding (bench trajectory entries): zero
    /// counters and empty spans are omitted, everything else identical.
    pub fn to_json_compact(&self) -> Json {
        self.render(true)
    }

    fn render(&self, compact: bool) -> Json {
        let mut root = Json::Obj(Vec::new());
        if let Json::Obj(fields) = &mut root {
            fields.push(("schema".into(), Json::str(SCHEMA)));
            fields.push(("enabled".into(), Json::Bool(self.enabled)));
            if let Some(rate) = self.cache_hit_rate() {
                fields.push(("cache_hit_rate".into(), Json::Num(rate)));
            }
            if let Some(rate) = self.trace_replay_rate() {
                fields.push(("trace_replay_rate".into(), Json::Num(rate)));
            }
            if let Some(width) = self.mean_batch_width() {
                fields.push(("mean_batch_width".into(), Json::Num(width)));
            }
            let counters: Vec<(String, Json)> = self
                .counters
                .iter()
                .filter(|(_, v)| !compact || *v > 0)
                .map(|(n, v)| (n.clone(), Json::u64(*v)))
                .collect();
            fields.push(("counters".into(), Json::Obj(counters)));
            let spans: Vec<(String, Json)> = self
                .spans
                .iter()
                .filter(|(_, h)| !compact || h.count > 0)
                .map(|(n, h)| (n.clone(), hist_json(h, "sum_ns")))
                .collect();
            fields.push(("spans".into(), Json::Obj(spans)));
            let hists: Vec<(String, Json)> = self
                .hists
                .iter()
                .filter(|(_, h)| !compact || h.count > 0)
                .map(|(n, h)| (n.clone(), hist_json(h, "sum")))
                .collect();
            if !compact || !hists.is_empty() {
                fields.push(("hists".into(), Json::Obj(hists)));
            }
            if !compact || !self.workers.is_empty() {
                fields.push((
                    "workers".into(),
                    Json::Arr(
                        self.workers
                            .iter()
                            .map(|w| {
                                Json::Obj(vec![
                                    ("worker".into(), Json::u64(w.worker as u64)),
                                    ("jobs".into(), Json::u64(w.jobs)),
                                    ("busy_ns".into(), Json::u64(w.busy_ns)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
        }
        root
    }

    /// Parse a snapshot document (full or compact).  Counters or spans the
    /// document omits are simply absent from the result — compact-rendered
    /// zeros stay zero-by-omission, and [`Snapshot::counter`] returns
    /// `None` for them.
    pub fn from_json(doc: &Json) -> Result<Snapshot, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unsupported metrics schema {other:?}")),
            None => return Err("missing metrics schema tag".into()),
        }
        let enabled = doc
            .get("enabled")
            .and_then(Json::as_bool)
            .ok_or("missing enabled flag")?;
        let mut counters = Vec::new();
        if let Some(Json::Obj(fields)) = doc.get("counters") {
            for (name, v) in fields {
                let v = v
                    .as_u64()
                    .ok_or_else(|| format!("counter {name} is not a u64"))?;
                counters.push((name.clone(), v));
            }
        }
        let mut spans = Vec::new();
        if let Some(Json::Obj(fields)) = doc.get("spans") {
            for (name, h) in fields {
                spans.push((name.clone(), hist_from_json(name, h, "sum_ns")?));
            }
        }
        // Pre-batching documents have no `hists` section: parse to empty.
        let mut hists = Vec::new();
        if let Some(Json::Obj(fields)) = doc.get("hists") {
            for (name, h) in fields {
                hists.push((name.clone(), hist_from_json(name, h, "sum")?));
            }
        }
        let mut workers = Vec::new();
        if let Some(Json::Arr(items)) = doc.get("workers") {
            for item in items {
                let field = |k: &str| {
                    item.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("worker entry missing {k}"))
                };
                workers.push(WorkerSnapshot {
                    worker: field("worker")? as usize,
                    jobs: field("jobs")?,
                    busy_ns: field("busy_ns")?,
                });
            }
        }
        Ok(Snapshot {
            enabled,
            counters,
            spans,
            hists,
            workers,
        })
    }

    /// Parse from JSON text (convenience over [`Snapshot::from_json`]).
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let doc = Json::parse(text).map_err(|JsonError { offset, message }| {
            format!("metrics JSON invalid at byte {offset}: {message}")
        })?;
        Snapshot::from_json(&doc)
    }
}

fn hist_json(h: &HistSnapshot, sum_key: &str) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::u64(h.count)),
        (sum_key.into(), Json::u64(h.sum)),
        (
            "buckets".into(),
            Json::Arr(h.buckets.iter().map(|&b| Json::u64(b)).collect()),
        ),
    ])
}

fn hist_from_json(name: &str, h: &Json, sum_key: &str) -> Result<HistSnapshot, String> {
    let count = h
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram {name} missing count"))?;
    let sum = h
        .get(sum_key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram {name} missing {sum_key}"))?;
    let buckets = match h.get("buckets") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|b| {
                b.as_u64()
                    .ok_or_else(|| format!("histogram {name} bucket not a u64"))
            })
            .collect::<Result<Vec<u64>, String>>()?,
        _ => return Err(format!("histogram {name} missing buckets")),
    };
    Ok(HistSnapshot {
        count,
        sum,
        buckets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Counter, Recorder, SpanKind, ValueHist};

    fn busy_recorder() -> Recorder {
        let r = Recorder::new();
        r.set_enabled(true);
        r.add(Counter::CacheHits, 3);
        r.incr(Counter::CacheMisses);
        r.add(Counter::SchedReadyScans, 1234);
        r.record_ns(SpanKind::JobCompile, 0);
        r.record_ns(SpanKind::JobCompile, 900);
        r.record_ns(SpanKind::JobSimulate, 1_500_000);
        r.worker_record(0, 4, 812_345);
        r
    }

    #[test]
    fn full_json_round_trips_exactly() {
        let snap = busy_recorder().snapshot();
        let text = snap.to_json().render();
        let back = Snapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
        // Canonical: re-rendering the parse is byte-identical.
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn schema_and_derived_fields_are_present() {
        let snap = busy_recorder().snapshot();
        let doc = snap.to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let rate = doc.get("cache_hit_rate").and_then(Json::as_f64).unwrap();
        assert!((rate - 0.75).abs() < 1e-12);
        assert_eq!(snap.cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn compact_form_omits_zeros_but_parses_back() {
        let snap = busy_recorder().snapshot();
        let compact = snap.to_json_compact().render();
        assert!(
            !compact.contains("store_records_appended"),
            "zero counters omitted"
        );
        assert!(!compact.contains("store_append_ns"), "empty spans omitted");
        let back = Snapshot::parse(&compact).unwrap();
        assert_eq!(back.counter("cache_hits"), Some(3));
        assert_eq!(back.counter("store_records_appended"), None);
        assert_eq!(back.span("job_compile_ns").unwrap().count, 2);
        assert_eq!(back.cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn trace_replay_rate_is_derived_and_round_trips() {
        let r = busy_recorder();
        r.incr(Counter::SimRuns);
        r.add(Counter::TraceReplays, 3);
        let snap = r.snapshot();
        assert_eq!(snap.trace_replay_rate(), Some(0.75));
        let doc = snap.to_json();
        let rate = doc.get("trace_replay_rate").and_then(Json::as_f64).unwrap();
        assert!((rate - 0.75).abs() < 1e-12);
        let text = doc.render();
        let back = Snapshot::parse(&text).unwrap();
        assert_eq!(back.trace_replay_rate(), Some(0.75));
        assert_eq!(back.to_json().render(), text, "canonical across the trip");
        // No simulations at all → no rate, no field.
        let idle = busy_recorder().snapshot();
        assert_eq!(idle.trace_replay_rate(), None);
        assert!(idle.to_json().get("trace_replay_rate").is_none());
    }

    #[test]
    fn value_hists_round_trip_and_derive_mean_batch_width() {
        let r = busy_recorder();
        for w in [4u64, 4, 4, 8] {
            r.add(Counter::ReplayBatches, 1);
            r.record_value(ValueHist::ReplayBatchWidth, w);
        }
        let snap = r.snapshot();
        assert_eq!(snap.mean_batch_width(), Some(5.0));
        let doc = snap.to_json();
        let width = doc.get("mean_batch_width").and_then(Json::as_f64).unwrap();
        assert!((width - 5.0).abs() < 1e-12);
        let hist = doc.get("hists").unwrap().get("replay_batch_width").unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(4));
        assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(20));
        // Full and compact forms both survive the round trip.
        let text = doc.render();
        let back = Snapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json().render(), text);
        let compact = Snapshot::parse(&snap.to_json_compact().render()).unwrap();
        assert_eq!(compact.mean_batch_width(), Some(5.0));
        // An idle recorder renders no hists in compact form and derives
        // no width.
        let idle = busy_recorder().snapshot();
        assert_eq!(idle.mean_batch_width(), None);
        assert!(!idle.to_json_compact().render().contains("hists"));
    }

    #[test]
    fn documents_without_a_hists_section_still_parse() {
        // A pre-batching snapshot (schema unchanged, section absent) must
        // stay readable: hists parse to empty, derived width to None.
        let old = "{\"schema\":\"vmv-metrics/1\",\"enabled\":true,\
                   \"counters\":{\"sim_runs\":2},\"spans\":{}}";
        let snap = Snapshot::parse(old).unwrap();
        assert!(snap.hists.is_empty());
        assert_eq!(snap.mean_batch_width(), None);
        assert_eq!(snap.counter("sim_runs"), Some(2));
    }

    #[test]
    fn idle_recorder_has_no_hit_rate_field() {
        let snap = Recorder::new().snapshot();
        assert_eq!(snap.cache_hit_rate(), None);
        assert!(snap.to_json().get("cache_hit_rate").is_none());
        let back = Snapshot::parse(&snap.to_json().render()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn wrong_or_missing_schema_is_rejected() {
        assert!(
            Snapshot::parse("{\"schema\":\"vmv-metrics/999\",\"enabled\":true}")
                .unwrap_err()
                .contains("unsupported")
        );
        assert!(Snapshot::parse("{\"enabled\":true}")
            .unwrap_err()
            .contains("missing metrics schema"));
    }
}
