//! A minimal hand-rolled JSON value type with an emitter and a
//! recursive-descent parser — just enough for the JSONL result store, with
//! no external dependencies.
//!
//! Numbers are kept as `f64`; every integer the store writes (cycle counts,
//! operation counts) is far below 2^53, so the round trip is exact.

/// A JSON value.  Object keys keep insertion order so emitted lines are
/// stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Exact for values below 2^53 (all counters the store uses).
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render as compact JSON (single line — suitable for JSONL).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Render as indented multi-line JSON (two-space indent).  Human-facing
    /// output only (`sweep --print-spec`); [`Json::render`] remains the
    /// canonical single-line form that fingerprints hash.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out
    }

    fn render_pretty_into(&self, out: &mut String, indent: usize) {
        fn pad(out: &mut String, indent: usize) {
            for _ in 0..indent {
                out.push_str("  ");
            }
        }
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render_pretty_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
            scalar_or_empty => scalar_or_empty.render_into(out),
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}
impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not needed by the store; map
                            // them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let v = Json::Obj(vec![
            ("key".into(), Json::str("0123abcd")),
            ("config".into(), Json::str("4w +Vec2x4 \"quoted\" \\ tab\t")),
            ("cycles".into(), Json::u64(1_234_567_890)),
            ("ok".into(), Json::Bool(true)),
            ("ratio".into(), Json::Num(0.5)),
            ("tags".into(), Json::Arr(vec![Json::Null, Json::num(-3.0)])),
        ]);
        let line = v.render();
        assert!(!line.contains('\n'), "JSONL lines must be single-line");
        let back = Json::parse(&line).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("cycles").unwrap().as_u64(), Some(1_234_567_890));
        assert_eq!(back.get("key").unwrap().as_str(), Some("0123abcd"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::u64(42).render(), "42");
        assert_eq!(Json::Num(1.5).render(), "1.5");
    }

    #[test]
    fn pretty_rendering_parses_back_to_the_same_value() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("demo")),
            (
                "axes".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("axis".into(), Json::str("issue_width")),
                    ("values".into(), Json::Arr(vec![Json::u64(2), Json::u64(4)])),
                ])]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let pretty = v.render_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\"empty\": []"), "{pretty}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , \"x\\u0041\\n\" ] } ").unwrap();
        let arr = match v.get("a") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("xA\n"));
    }
}
