//! The process-wide recorder: one static registry of counters, span
//! histograms and per-worker totals, gated on a relaxed atomic enable flag.
//!
//! Everything is a fixed-size `AtomicU64` array indexed by a closed enum,
//! so the hot path never allocates, hashes or locks.  When the recorder is
//! disabled (the default) every entry point reduces to one relaxed load
//! and a branch; the instrumented layers (scheduler, memory hierarchy,
//! sweep executor, store) therefore cost nothing measurable in ordinary
//! runs — the acceptance bar the `bench` trajectory enforces.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::hist::AtomicHist;
use crate::snapshot::{Snapshot, WorkerSnapshot};

/// Every counter the instrumented pipeline can bump.  Names (see
/// [`Counter::name`]) are the JSON snapshot keys — stable, snake_case,
/// prefixed by the owning layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Compile-cache lookups served from an already-compiled entry.
    CacheHits,
    /// Compile-cache lookups that ran the scheduler.
    CacheMisses,
    /// Basic blocks list-scheduled.
    SchedBlocks,
    /// Ready-scan iterations of the list scheduler's cycle loop (the known
    /// top cost of the compile stage).
    SchedReadyScans,
    /// Operations placed into bundles.
    SchedOpsPlaced,
    /// Issue cycles produced (bundle slots, including empty ones).
    SchedCyclesScheduled,
    /// Completed simulator runs (lowered engine).
    SimRuns,
    /// Timing traces recorded by an execute-and-record run.
    TraceRecords,
    /// Completed trace-replay runs (retimed without functional execution).
    TraceReplays,
    /// Batched replay walks (one walk retiming one or more variants; the
    /// per-variant runs land in `TraceReplays`).
    ReplayBatches,
    /// Scalar loads/stores and vector loads/stores timed by the hierarchy.
    MemScalarLoads,
    MemScalarStores,
    MemVectorLoads,
    MemVectorStores,
    /// Per-level hit/miss counts.
    MemL1Hits,
    MemL1Misses,
    MemL2Hits,
    MemL2Misses,
    MemL3Hits,
    MemL3Misses,
    /// L1 lines invalidated by vector writes (inclusion coherence).
    MemCoherenceInvalidations,
    /// Result-store records appended (persisted runs).
    StoreRecordsAppended,
    /// Store lines skipped, by class.
    StoreLinesMalformed,
    StoreLinesUnrecognized,
    StoreDuplicateKeys,
    StoreMidfileHeaders,
    /// Sweep executor job outcomes.
    SweepJobsCompleted,
    SweepJobsFailed,
    SweepJobsSkipped,
    /// Completed static-verifier certifications (`vmv_verify::verify_compiled`).
    VerifyChecks,
    /// Cycle-attribution profiles produced (one per profiled run, across
    /// all three engines; a profiled batch contributes K).
    ProfileRuns,
    /// Attributed stall cycles, by cause class, summed over every profile
    /// produced.  The six causes partition each profile's `stall_cycles`
    /// exactly, so these counters sum to the total stall cycles of every
    /// profiled run.
    ProfileStallRaw,
    ProfileStallWaitL1,
    ProfileStallWaitL2,
    ProfileStallWaitL3,
    ProfileStallWaitMem,
    ProfileStallL2Port,
    /// Spans entered (== histogram samples recorded via guards).  Exactly 0
    /// while the recorder is disabled — the overhead regression test keys
    /// on this.
    SpansEntered,
}

impl Counter {
    pub const ALL: [Counter; 38] = [
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::SchedBlocks,
        Counter::SchedReadyScans,
        Counter::SchedOpsPlaced,
        Counter::SchedCyclesScheduled,
        Counter::SimRuns,
        Counter::TraceRecords,
        Counter::TraceReplays,
        Counter::ReplayBatches,
        Counter::MemScalarLoads,
        Counter::MemScalarStores,
        Counter::MemVectorLoads,
        Counter::MemVectorStores,
        Counter::MemL1Hits,
        Counter::MemL1Misses,
        Counter::MemL2Hits,
        Counter::MemL2Misses,
        Counter::MemL3Hits,
        Counter::MemL3Misses,
        Counter::MemCoherenceInvalidations,
        Counter::StoreRecordsAppended,
        Counter::StoreLinesMalformed,
        Counter::StoreLinesUnrecognized,
        Counter::StoreDuplicateKeys,
        Counter::StoreMidfileHeaders,
        Counter::SweepJobsCompleted,
        Counter::SweepJobsFailed,
        Counter::SweepJobsSkipped,
        Counter::VerifyChecks,
        Counter::ProfileRuns,
        Counter::ProfileStallRaw,
        Counter::ProfileStallWaitL1,
        Counter::ProfileStallWaitL2,
        Counter::ProfileStallWaitL3,
        Counter::ProfileStallWaitMem,
        Counter::ProfileStallL2Port,
        Counter::SpansEntered,
    ];

    /// Stable snapshot key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::SchedBlocks => "sched_blocks",
            Counter::SchedReadyScans => "sched_ready_scans",
            Counter::SchedOpsPlaced => "sched_ops_placed",
            Counter::SchedCyclesScheduled => "sched_cycles_scheduled",
            Counter::SimRuns => "sim_runs",
            Counter::TraceRecords => "trace_records",
            Counter::TraceReplays => "trace_replays",
            Counter::ReplayBatches => "replay_batches",
            Counter::MemScalarLoads => "mem_scalar_loads",
            Counter::MemScalarStores => "mem_scalar_stores",
            Counter::MemVectorLoads => "mem_vector_loads",
            Counter::MemVectorStores => "mem_vector_stores",
            Counter::MemL1Hits => "mem_l1_hits",
            Counter::MemL1Misses => "mem_l1_misses",
            Counter::MemL2Hits => "mem_l2_hits",
            Counter::MemL2Misses => "mem_l2_misses",
            Counter::MemL3Hits => "mem_l3_hits",
            Counter::MemL3Misses => "mem_l3_misses",
            Counter::MemCoherenceInvalidations => "mem_coherence_invalidations",
            Counter::StoreRecordsAppended => "store_records_appended",
            Counter::StoreLinesMalformed => "store_lines_malformed",
            Counter::StoreLinesUnrecognized => "store_lines_unrecognized",
            Counter::StoreDuplicateKeys => "store_duplicate_keys",
            Counter::StoreMidfileHeaders => "store_midfile_headers",
            Counter::SweepJobsCompleted => "sweep_jobs_completed",
            Counter::SweepJobsFailed => "sweep_jobs_failed",
            Counter::SweepJobsSkipped => "sweep_jobs_skipped",
            Counter::VerifyChecks => "verify_checks",
            Counter::ProfileRuns => "profile_runs",
            Counter::ProfileStallRaw => "profile_stall_raw",
            Counter::ProfileStallWaitL1 => "profile_stall_wait_l1",
            Counter::ProfileStallWaitL2 => "profile_stall_wait_l2",
            Counter::ProfileStallWaitL3 => "profile_stall_wait_l3",
            Counter::ProfileStallWaitMem => "profile_stall_wait_mem",
            Counter::ProfileStallL2Port => "profile_stall_l2_port",
            Counter::SpansEntered => "spans_entered",
        }
    }
}

/// Timed scopes recorded into nanosecond histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanKind {
    /// Time a sweep job waited between job-list creation and pickup.
    JobQueueWait,
    /// Time a sweep job spent in `get_or_compile` (schedule + lower on a
    /// miss, lock handoff on a hit).
    JobCompile,
    /// Time a sweep job spent simulating.
    JobSimulate,
    /// Time spent appending a batch to the result store.
    StoreAppend,
    /// Time spent retiming a recorded trace (the replay engine).
    TraceReplay,
    /// Time spent in one batched replay walk (all variants together).
    ReplayBatch,
}

impl SpanKind {
    pub const ALL: [SpanKind; 6] = [
        SpanKind::JobQueueWait,
        SpanKind::JobCompile,
        SpanKind::JobSimulate,
        SpanKind::StoreAppend,
        SpanKind::TraceReplay,
        SpanKind::ReplayBatch,
    ];

    /// Stable snapshot key (histogram values are nanoseconds).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::JobQueueWait => "job_queue_wait_ns",
            SpanKind::JobCompile => "job_compile_ns",
            SpanKind::JobSimulate => "job_simulate_ns",
            SpanKind::StoreAppend => "store_append_ns",
            SpanKind::TraceReplay => "trace_replay_ns",
            SpanKind::ReplayBatch => "replay_batch_ns",
        }
    }
}

/// Plain value histograms (log2 buckets over dimensionless samples, unlike
/// the nanosecond span histograms).  Rendered under the snapshot's `hists`
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ValueHist {
    /// Number of variants retimed per batched replay walk.
    ReplayBatchWidth,
}

impl ValueHist {
    pub const ALL: [ValueHist; 1] = [ValueHist::ReplayBatchWidth];

    /// Stable snapshot key.
    pub fn name(self) -> &'static str {
        match self {
            ValueHist::ReplayBatchWidth => "replay_batch_width",
        }
    }
}

/// Upper bound on per-worker slots tracked (the executor caps its pool at
/// 16; 32 leaves headroom for explicit `--threads`).
pub const MAX_WORKERS: usize = 32;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const HIST: AtomicHist = AtomicHist::new();

/// The registry behind the free functions.  Public so tests (or a future
/// multi-tenant service) can run private instances; ordinary code uses the
/// process-wide one via [`add`]/[`span`]/[`snapshot`].
pub struct Recorder {
    enabled: AtomicBool,
    counters: [AtomicU64; Counter::ALL.len()],
    spans: [AtomicHist; SpanKind::ALL.len()],
    hists: [AtomicHist; ValueHist::ALL.len()],
    worker_jobs: [AtomicU64; MAX_WORKERS],
    worker_busy_ns: [AtomicU64; MAX_WORKERS],
}

impl Recorder {
    pub const fn new() -> Recorder {
        Recorder {
            enabled: AtomicBool::new(false),
            counters: [ZERO; Counter::ALL.len()],
            spans: [HIST; SpanKind::ALL.len()],
            hists: [HIST; ValueHist::ALL.len()],
            worker_jobs: [ZERO; MAX_WORKERS],
            worker_busy_ns: [ZERO; MAX_WORKERS],
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if self.enabled() {
            self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Record one span sample of `ns` nanoseconds.
    pub fn record_ns(&self, s: SpanKind, ns: u64) {
        if self.enabled() {
            self.spans[s as usize].record(ns);
            self.counters[Counter::SpansEntered as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one sample into a plain value histogram.
    #[inline]
    pub fn record_value(&self, h: ValueHist, v: u64) {
        if self.enabled() {
            self.hists[h as usize].record(v);
        }
    }

    /// Enter a timed scope; the guard records its elapsed time on drop.
    /// When the recorder is disabled at entry, the guard is inert (no
    /// clock read at all).
    pub fn span(&self, kind: SpanKind) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            kind,
            start: self.enabled().then(Instant::now),
        }
    }

    /// Fold one worker's lifetime totals in (called once per worker at
    /// pool exit, so this is never on the hot path).
    pub fn worker_record(&self, worker: usize, jobs: u64, busy_ns: u64) {
        if self.enabled() && worker < MAX_WORKERS {
            self.worker_jobs[worker].fetch_add(jobs, Ordering::Relaxed);
            self.worker_busy_ns[worker].fetch_add(busy_ns, Ordering::Relaxed);
        }
    }

    /// Freeze the current state (counters in declaration order, every
    /// span histogram, workers with any activity).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            enabled: self.enabled(),
            counters: Counter::ALL
                .iter()
                .map(|&c| {
                    (
                        c.name().to_string(),
                        self.counters[c as usize].load(Ordering::Relaxed),
                    )
                })
                .collect(),
            spans: SpanKind::ALL
                .iter()
                .map(|&s| (s.name().to_string(), self.spans[s as usize].snapshot()))
                .collect(),
            hists: ValueHist::ALL
                .iter()
                .map(|&h| (h.name().to_string(), self.hists[h as usize].snapshot()))
                .collect(),
            workers: (0..MAX_WORKERS)
                .filter_map(|w| {
                    let jobs = self.worker_jobs[w].load(Ordering::Relaxed);
                    let busy_ns = self.worker_busy_ns[w].load(Ordering::Relaxed);
                    (jobs > 0 || busy_ns > 0).then_some(WorkerSnapshot {
                        worker: w,
                        jobs,
                        busy_ns,
                    })
                })
                .collect(),
        }
    }

    /// Zero every metric (the enable flag is left as is).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for s in &self.spans {
            s.reset();
        }
        for h in &self.hists {
            h.reset();
        }
        for w in 0..MAX_WORKERS {
            self.worker_jobs[w].store(0, Ordering::Relaxed);
            self.worker_busy_ns[w].store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

/// A scoped timer: records the elapsed nanoseconds into its span's
/// histogram when dropped.  Inert (and free) when the recorder was
/// disabled at entry.
pub struct SpanGuard<'r> {
    recorder: &'r Recorder,
    kind: SpanKind,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder
                .record_ns(self.kind, start.elapsed().as_nanos() as u64);
        }
    }
}

/// The process-wide recorder instance.
static GLOBAL: Recorder = Recorder::new();

/// Whether the process-wide recorder is collecting.
#[inline]
pub fn enabled() -> bool {
    GLOBAL.enabled()
}

/// Turn process-wide collection on or off.
pub fn set_enabled(on: bool) {
    GLOBAL.set_enabled(on);
}

/// Add `n` to a counter (no-op while disabled).
#[inline]
pub fn add(c: Counter, n: u64) {
    GLOBAL.add(c, n);
}

/// Increment a counter by one (no-op while disabled).
#[inline]
pub fn incr(c: Counter) {
    GLOBAL.incr(c);
}

/// Record one span sample directly (no-op while disabled).
#[inline]
pub fn record_ns(s: SpanKind, ns: u64) {
    GLOBAL.record_ns(s, ns);
}

/// Record one value-histogram sample (no-op while disabled).
#[inline]
pub fn record_value(h: ValueHist, v: u64) {
    GLOBAL.record_value(h, v);
}

/// Enter a timed scope on the process-wide recorder.
pub fn span(kind: SpanKind) -> SpanGuard<'static> {
    GLOBAL.span(kind)
}

/// Fold one worker's totals into the process-wide recorder.
pub fn worker_record(worker: usize, jobs: u64, busy_ns: u64) {
    GLOBAL.worker_record(worker, jobs, busy_ns);
}

/// Snapshot the process-wide recorder.
pub fn snapshot() -> Snapshot {
    GLOBAL.snapshot()
}

/// Zero the process-wide recorder's metrics.
pub fn reset() {
    GLOBAL.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing_and_enters_no_spans() {
        let r = Recorder::new();
        r.add(Counter::CacheHits, 5);
        r.record_ns(SpanKind::JobCompile, 100);
        drop(r.span(SpanKind::JobSimulate));
        r.record_value(ValueHist::ReplayBatchWidth, 7);
        r.worker_record(0, 3, 999);
        let s = r.snapshot();
        assert!(!s.enabled);
        assert!(s.counters.iter().all(|(_, v)| *v == 0));
        assert_eq!(s.counter("spans_entered"), Some(0));
        assert!(s.spans.iter().all(|(_, h)| h.count == 0));
        assert!(s.hists.iter().all(|(_, h)| h.count == 0));
        assert!(s.workers.is_empty());
    }

    #[test]
    fn enabled_recorder_counts_spans_and_workers() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.incr(Counter::CacheMisses);
        r.add(Counter::SchedReadyScans, 41);
        r.add(Counter::SchedReadyScans, 1);
        {
            let _g = r.span(SpanKind::JobSimulate);
        }
        r.record_ns(SpanKind::JobQueueWait, 1000);
        r.worker_record(2, 7, 12345);
        let s = r.snapshot();
        assert_eq!(s.counter("cache_misses"), Some(1));
        assert_eq!(s.counter("sched_ready_scans"), Some(42));
        assert_eq!(s.counter("spans_entered"), Some(2));
        assert_eq!(s.span("job_simulate_ns").unwrap().count, 1);
        assert_eq!(s.span("job_queue_wait_ns").unwrap().sum, 1000);
        assert_eq!(
            s.workers,
            vec![WorkerSnapshot {
                worker: 2,
                jobs: 7,
                busy_ns: 12345
            }]
        );

        r.reset();
        let s = r.snapshot();
        assert!(s.counters.iter().all(|(_, v)| *v == 0));
        assert!(s.workers.is_empty());
        assert!(s.enabled, "reset leaves the enable flag alone");
    }

    #[test]
    fn guard_taken_while_disabled_stays_inert_across_an_enable() {
        let r = Recorder::new();
        let g = r.span(SpanKind::JobCompile);
        r.set_enabled(true);
        drop(g);
        assert_eq!(r.snapshot().span("job_compile_ns").unwrap().count, 0);
    }

    #[test]
    fn counter_names_are_unique_and_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate counter name {}", c.name());
            assert!(
                c.name()
                    .chars()
                    .all(|ch| ch.is_ascii_lowercase() || ch == '_' || ch.is_ascii_digit()),
                "{}",
                c.name()
            );
        }
        for s in SpanKind::ALL {
            assert!(seen.insert(s.name()), "span name collides: {}", s.name());
            assert!(s.name().ends_with("_ns"), "{}", s.name());
        }
        for h in ValueHist::ALL {
            assert!(seen.insert(h.name()), "hist name collides: {}", h.name());
            assert!(
                !h.name().ends_with("_ns"),
                "value hists are dimensionless: {}",
                h.name()
            );
        }
    }

    #[test]
    fn value_hists_record_and_reset() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.record_value(ValueHist::ReplayBatchWidth, 4);
        r.record_value(ValueHist::ReplayBatchWidth, 4);
        r.record_value(ValueHist::ReplayBatchWidth, 8);
        let s = r.snapshot();
        let h = s.hist("replay_batch_width").unwrap();
        assert_eq!((h.count, h.sum), (3, 16));
        // Value samples are not spans: the span-entry counter stays put.
        assert_eq!(s.counter("spans_entered"), Some(0));
        r.reset();
        assert_eq!(r.snapshot().hist("replay_batch_width").unwrap().count, 0);
    }

    #[test]
    fn out_of_range_worker_indices_are_ignored() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.worker_record(MAX_WORKERS, 1, 1);
        assert!(r.snapshot().workers.is_empty());
    }
}
