//! Fixed-bucket log2 histograms of nanosecond durations.
//!
//! Bucket `i` (for `i >= 1`) holds samples whose value `v` satisfies
//! `2^(i-1) <= v < 2^i`; bucket 0 holds exactly the zero samples.  64
//! buckets therefore cover the full `u64` range with no configuration and
//! no allocation, and recording is one relaxed `fetch_add` on a fixed
//! array slot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: zero + one per power of two of `u64`.
pub const BUCKETS: usize = 65;

/// The bucket index of a sample value: 0 for 0, else `floor(log2(v)) + 1`.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The smallest value that lands in bucket `i` (the bucket's lower edge).
pub fn bucket_floor(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// A concurrently updatable histogram.  All operations are relaxed — the
/// totals are exact, but a snapshot taken mid-update may be internally
/// off by the in-flight sample (acceptable for telemetry).
pub struct AtomicHist {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

// `AtomicU64::new` is const, but array-repeat needs a const item.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl AtomicHist {
    pub const fn new() -> AtomicHist {
        AtomicHist {
            count: ZERO,
            sum: ZERO,
            buckets: [ZERO; BUCKETS],
        }
    }

    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for AtomicHist {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen histogram: totals plus the log2 buckets with trailing zero
/// buckets trimmed (so JSON snapshots stay short).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    pub count: u64,
    /// Sum of all recorded values (nanoseconds for span histograms).
    pub sum: u64,
    /// `buckets[i]` = samples in bucket `i` (see [`bucket_of`]).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower edge of the highest non-empty bucket — a cheap "max is at
    /// least" statistic the buckets preserve exactly.
    pub fn max_bucket_floor(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_floor)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_floor(i)), i, "floor of bucket {i}");
        }
    }

    #[test]
    fn record_and_snapshot_agree() {
        let h = AtomicHist::new();
        for v in [0, 1, 1, 5, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_007);
        assert_eq!(s.buckets[0], 1, "one zero sample");
        assert_eq!(s.buckets[1], 2, "two ones");
        assert_eq!(s.buckets[3], 1, "5 lands in [4,8)");
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
        assert!((s.mean() - 1_001_007.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.max_bucket_floor(), 1 << 19, "1e6 lands in [2^19, 2^20)");
        h.reset();
        assert_eq!(h.snapshot(), HistSnapshot::default());
    }

    #[test]
    fn trailing_zero_buckets_are_trimmed() {
        let h = AtomicHist::new();
        h.record(3);
        let s = h.snapshot();
        assert_eq!(s.buckets.len(), 3, "buckets 0..=2, rest trimmed");
        let empty = AtomicHist::new().snapshot();
        assert!(empty.buckets.is_empty());
        assert_eq!(empty.max_bucket_floor(), 0);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = AtomicHist::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.sum, 4 * (999 * 1000 / 2));
    }
}
