//! # vector-usimd-vliw
//!
//! A from-scratch Rust reproduction of *"A Vector-µSIMD-VLIW Architecture
//! for Multimedia Applications"* (Salamí & Valero, ICPP 2005): the three
//! instruction sets (scalar VLIW, µSIMD, MOM-style Vector-µSIMD), the static
//! VLIW scheduler with vector-aware latency descriptors and chaining, the
//! cycle-level stall-on-miss simulator, the memory hierarchy with the
//! two-bank interleaved L2 vector cache, the six Mediabench-style workloads
//! hand-written in all three ISAs, and the experiment driver that rebuilds
//! every table and figure of the paper's evaluation.
//!
//! This umbrella crate re-exports the individual crates under convenient
//! names; see the `examples/` directory for end-to-end usage.
//!
//! ```
//! use vector_usimd_vliw as vmv;
//!
//! // Compile and run the GSM decoder on a 2-issue Vector-µSIMD-VLIW machine.
//! let machine = vmv::machine::presets::vector2(2);
//! let outcome = vmv::core::run_one(
//!     vmv::kernels::Benchmark::GsmDec,
//!     &machine,
//!     vmv::mem::MemoryModel::Perfect,
//! )
//! .unwrap();
//! assert!(outcome.check_failures.is_empty());
//! assert!(outcome.stats.cycles() > 0);
//! ```

#![forbid(unsafe_code)]

pub use vmv_core as core;
pub use vmv_isa as isa;
pub use vmv_kernels as kernels;
pub use vmv_machine as machine;
pub use vmv_mem as mem;
pub use vmv_report as report;
pub use vmv_sched as sched;
pub use vmv_sim as sim;
pub use vmv_sweep as sweep;
pub use vmv_verify as verify;
