//! Quick-start: write a small Vector-µSIMD program with the builder, compile
//! it for a 2-issue Vector-µSIMD-VLIW machine, run it on the cycle-level
//! simulator, and print the timing statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vector_usimd_vliw as vmv;
use vmv::isa::ProgramBuilder;
use vmv::mem::MemoryModel;
use vmv::sim::Simulator;

fn main() {
    // A tiny kernel: element-wise saturating add of two byte arrays of 256
    // elements, written with the Vector-µSIMD ISA (two iterations of 128
    // bytes each).
    let mut b = ProgramBuilder::new("quickstart");
    let a_ptr = b.imm(0x1000);
    let b_ptr = b.imm(0x2000);
    let o_ptr = b.imm(0x3000);
    b.begin_region(1, "saturating add");
    b.setvl(16);
    b.setvs(8);
    b.counted_loop("vadd", 2, |b, _| {
        let x = b.rv();
        let y = b.rv();
        b.vload(x, a_ptr, 0);
        b.vload(y, b_ptr, 0);
        let s = b.rv();
        b.vadd(vmv::isa::Elem::B, vmv::isa::Sat::Unsigned, s, x, y);
        b.vstore(o_ptr, 0, s);
        b.addi(a_ptr, a_ptr, 128);
        b.addi(b_ptr, b_ptr, 128);
        b.addi(o_ptr, o_ptr, 128);
    });
    b.end_region();
    b.halt();
    let program = b.finish();

    // Compile for the 2-issue "+Vector2" configuration of Table 2.
    let machine = vmv::machine::presets::vector2(2);
    let compiled = vmv::sched::compile(&program, &machine).expect("compiles");
    println!("static schedule:\n{}", compiled.program.dump());

    // Run it.
    let mut sim = Simulator::with_model(&machine, MemoryModel::Realistic);
    let a: Vec<u8> = (0..256).map(|i| (i % 200) as u8).collect();
    let bb: Vec<u8> = (0..256).map(|i| (i % 90) as u8).collect();
    sim.mem.write_u8_slice(0x1000, &a);
    sim.mem.write_u8_slice(0x2000, &bb);
    let stats = sim.run(&compiled.program).expect("runs");

    // Check the result against plain Rust.
    let out = sim.mem.read_u8_slice(0x3000, 256);
    let expect: Vec<u8> = a
        .iter()
        .zip(&bb)
        .map(|(&x, &y)| x.saturating_add(y))
        .collect();
    assert_eq!(
        out, expect,
        "the simulated kernel must match the Rust reference"
    );

    println!(
        "ran {} operations ({} micro-operations) in {} cycles ({} stall cycles)",
        stats.total().operations,
        stats.total().micro_ops,
        stats.cycles(),
        stats.total().stall_cycles,
    );
    println!(
        "vector regions account for {:.1}% of the cycles",
        100.0 * stats.vectorization_fraction()
    );
}
