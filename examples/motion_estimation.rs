//! The motion-estimation (SAD) kernel of paper §3.3.1 / Fig. 4: builds the
//! `dist1` kernel in all three ISA variants, prints the static schedule of
//! the Vector-µSIMD version on a 2-issue Vector2 machine (the configuration
//! of Fig. 4), and compares cycle counts across the ISAs.
//!
//! ```text
//! cargo run --release --example motion_estimation
//! ```

use vector_usimd_vliw as vmv;
use vmv::isa::ProgramBuilder;
use vmv::kernels::patterns::sad::{emit_motion_search, emit_sad_16x16, SadParams};
use vmv::kernels::IsaVariant;
use vmv::mem::MemoryModel;
use vmv::sim::Simulator;

const WIDTH: usize = 64;

fn build(variant: IsaVariant, with_search: bool) -> vmv::isa::Program {
    let mut b = ProgramBuilder::new(format!("dist1_{}", variant.name()));
    b.begin_region(1, "motion estimation");
    if with_search {
        let candidates: Vec<u64> = (0..9)
            .map(|i| ((8 + i / 3) * WIDTH + 8 + i % 3) as u64)
            .collect();
        emit_motion_search(
            &mut b,
            variant,
            &SadParams {
                cur_addr: 0x1000 + (8 * WIDTH + 8) as u64,
                ref_addr: 0x4000,
                stride: WIDTH,
                candidates,
                sads_addr: 0x8000,
                best_addr: 0x8100,
            },
        );
    } else {
        let sad = emit_sad_16x16(&mut b, variant, 0x1000, 0x4000, WIDTH);
        let out = b.imm(0x8000);
        b.st32(out, 0, sad);
    }
    b.end_region();
    b.halt();
    b.finish()
}

fn main() {
    // Fig. 4 shows the schedule of one 8x16 SAD on a 2-issue Vector2 machine;
    // print our equivalent static schedule for the vector variant.
    let machine = vmv::machine::presets::vector2(2);
    let program = build(IsaVariant::Vector, false);
    let compiled = vmv::sched::compile(&program, &machine).expect("compiles");
    println!("--- static schedule of the Vector-µSIMD SAD (2-issue +Vector2, cf. Fig. 4) ---");
    println!("{}", compiled.program.dump());

    // Now run the full 9-candidate search in every ISA variant on its
    // matching machine and compare cycles.
    println!("--- 9-candidate full search, 16x16 block, frame width {WIDTH} ---");
    for (variant, machine) in [
        (IsaVariant::Scalar, vmv::machine::presets::vliw(2)),
        (IsaVariant::Usimd, vmv::machine::presets::usimd(2)),
        (IsaVariant::Vector, vmv::machine::presets::vector2(2)),
    ] {
        let program = build(variant, true);
        let compiled = vmv::sched::compile(&program, &machine).expect("compiles");
        let mut sim = Simulator::with_model(&machine, MemoryModel::Realistic);
        let frame: Vec<u8> = (0..WIDTH * 32).map(|i| (i * 7 % 251) as u8).collect();
        sim.mem.write_u8_slice(0x1000, &frame);
        sim.mem.write_u8_slice(0x4000, &frame);
        let stats = sim.run(&compiled.program).expect("runs");
        println!(
            "{:22} {:7} ops  {:8} micro-ops  {:7} cycles  ({} stall cycles from the strided accesses)",
            format!("{} on {}", variant.name(), machine.name),
            stats.total().operations,
            stats.total().micro_ops,
            stats.cycles(),
            stats.total().stall_cycles
        );
    }
}
