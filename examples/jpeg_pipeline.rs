//! Run the complete JPEG encoder benchmark (colour conversion → forward DCT
//! → quantisation → entropy coding) on several processor configurations and
//! print a per-region cycle breakdown — a miniature version of the paper's
//! Figure 6 for one application.
//!
//! ```text
//! cargo run --release --example jpeg_pipeline
//! ```

use vector_usimd_vliw as vmv;
use vmv::core::run_one;
use vmv::kernels::Benchmark;
use vmv::mem::MemoryModel;

fn main() {
    let machines = vmv::machine::all_configs();
    let baseline = run_one(Benchmark::JpegEnc, &machines[0], MemoryModel::Realistic)
        .expect("baseline run succeeds");
    println!(
        "{:<14} {:>10} {:>9} {:>9} {:>8} {:>7}",
        "config", "cycles", "scalar", "vector", "speedup", "%vect"
    );
    for machine in &machines {
        let outcome =
            run_one(Benchmark::JpegEnc, machine, MemoryModel::Realistic).expect("run succeeds");
        assert!(
            outcome.check_failures.is_empty(),
            "functional checks failed on {}: {:?}",
            machine.name,
            outcome.check_failures
        );
        let s = &outcome.stats;
        println!(
            "{:<14} {:>10} {:>9} {:>9} {:>8.2} {:>6.1}%",
            machine.name,
            s.cycles(),
            s.scalar().cycles,
            s.vector().cycles,
            baseline.stats.cycles() as f64 / s.cycles() as f64,
            100.0 * s.vectorization_fraction()
        );
    }
    println!("\nPer-region breakdown on the 4-issue +Vector2 machine:");
    let outcome = run_one(
        Benchmark::JpegEnc,
        &vmv::machine::presets::vector2(4),
        MemoryModel::Realistic,
    )
    .expect("run succeeds");
    for (region, stats) in &outcome.stats.regions {
        let name = Benchmark::JpegEnc
            .vector_region_names()
            .get(region.0.wrapping_sub(1) as usize)
            .copied()
            .unwrap_or("scalar region");
        println!(
            "  R{} {:<32} {:>8} cycles  {:>8} ops  {:>9} micro-ops",
            region.0, name, stats.cycles, stats.operations, stats.micro_ops
        );
    }
}
