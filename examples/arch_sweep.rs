//! Design-space exploration with the declarative `vmv-sweep` spec API:
//! describe the experiment as data (a [`SpecFile`] — the same form the
//! checked-in `examples/specs/*.json` files take), lower it onto the
//! expansion machinery, run every point in parallel (with compile
//! memoization), and summarise the result as a cost/cycles Pareto frontier
//! and a per-axis sensitivity ranking.
//!
//! ```text
//! cargo run --release --example arch_sweep
//! ```

use vector_usimd_vliw as vmv;
use vmv::mem::MemoryModel;
use vmv::sweep::{
    pareto_report, render_pareto, render_sensitivity, sensitivity, AxisSpec, ConstraintSpec,
    ExecOptions, SpecDefaults, SpecFile,
};

fn main() {
    // The question the paper answers with four fixed lanes (§3.2): how do
    // lane count and vector-unit count trade off against each other, under
    // both memory models, if the total lane budget is capped?  As data the
    // experiment is serializable: dump it with `canonical()`, check it in,
    // and `sweep --spec` reruns it bit-for-bit.
    let spec = SpecFile {
        name: "lane_tradeoff".to_string(),
        axes: vec![
            AxisSpec::VectorUnits(vec![1, 2, 4]),
            AxisSpec::VectorLanes(vec![1, 2, 4, 8]),
            AxisSpec::MemoryModel(vec![MemoryModel::Perfect, MemoryModel::Realistic]),
        ],
        constraints: vec![ConstraintSpec::LaneBudget { max: 16 }],
        defaults: SpecDefaults::default(),
    };
    println!(
        "spec '{}' (fingerprint {}):\n{}\n",
        spec.name,
        spec.fingerprint(),
        spec.canonical().render_pretty()
    );

    let lowered = spec.lower().expect("spec is valid");
    let expansion = lowered.spec.expand();
    println!(
        "{} design points ({} raw, {} rejected by the lane-budget constraint)\n",
        expansion.points.len(),
        expansion.raw,
        expansion.rejected
    );

    let opts = ExecOptions::for_spec(&lowered, 0);
    let report = vmv::sweep::run_sweep(&expansion.points, &opts, None).expect("sweep runs");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    println!(
        "ran {} simulations in {:.2}s — {} schedules, {} compile-cache hits\n",
        report.records.len(),
        report.wall_seconds,
        report.cache.misses,
        report.cache.hits
    );

    println!("Pareto frontier (total cycles over all six benchmarks vs. hardware cost):");
    print!(
        "{}",
        render_pareto(&pareto_report(&expansion.points, &report.records), 12)
    );

    println!("\nWhich axis moves performance the most?");
    print!(
        "{}",
        render_sensitivity(&sensitivity(&expansion.points, &report.records))
    );

    println!(
        "\n(The paper fixes four lanes: with the short vector lengths of these kernels,\n\
         more lanes give diminishing returns, §3.2 — the sensitivity table shows it.)"
    );
}
