//! Design-space exploration with the `vmv-sweep` engine: declare axes over
//! the machine configuration, expand the cartesian product under a
//! constraint, run every point in parallel (with compile memoization), and
//! summarise the result as a cost/cycles Pareto frontier and a per-axis
//! sensitivity ranking.
//!
//! ```text
//! cargo run --release --example arch_sweep
//! ```

use vector_usimd_vliw as vmv;
use vmv::kernels::Benchmark;
use vmv::mem::MemoryModel;
use vmv::sweep::{
    pareto_report, render_pareto, render_sensitivity, sensitivity, Axis, ExecOptions, SweepSpec,
};

fn main() {
    // The question the paper answers with four fixed lanes (§3.2): how do
    // lane count and vector-unit count trade off against each other, under
    // both memory models, if the total lane budget is capped?
    let expansion = SweepSpec::new()
        .axis(Axis::vector_units(&[1, 2, 4]))
        .axis(Axis::vector_lanes(&[1, 2, 4, 8]))
        .axis(Axis::memory_model(&[
            MemoryModel::Perfect,
            MemoryModel::Realistic,
        ]))
        .constraint("lane budget: units x lanes <= 16", |m, _| {
            m.vector_units as u32 * m.vector_lanes <= 16
        })
        .expand();
    println!(
        "{} design points ({} raw, {} rejected by the lane-budget constraint)\n",
        expansion.points.len(),
        expansion.raw,
        expansion.rejected
    );

    let opts = ExecOptions {
        benchmarks: Benchmark::ALL.to_vec(),
        workers: 0,
    };
    let report = vmv::sweep::run_sweep(&expansion.points, &opts, None).expect("sweep runs");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    println!(
        "ran {} simulations in {:.2}s — {} schedules, {} compile-cache hits\n",
        report.records.len(),
        report.wall_seconds,
        report.cache.misses,
        report.cache.hits
    );

    println!("Pareto frontier (total cycles over all six benchmarks vs. hardware cost):");
    print!(
        "{}",
        render_pareto(&pareto_report(&expansion.points, &report.records), 12)
    );

    println!("\nWhich axis moves performance the most?");
    print!(
        "{}",
        render_sensitivity(&sensitivity(&expansion.points, &report.records))
    );

    println!(
        "\n(The paper fixes four lanes: with the short vector lengths of these kernels,\n\
         more lanes give diminishing returns, §3.2 — the sensitivity table shows it.)"
    );
}
