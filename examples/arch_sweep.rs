//! Sweep an architectural parameter (the number of vector lanes) and watch
//! its effect on the vector regions of every benchmark — the kind of design
//! -space exploration the library is meant for beyond reproducing the paper.
//!
//! ```text
//! cargo run --release --example arch_sweep
//! ```

use vector_usimd_vliw as vmv;
use vmv::core::run_one;
use vmv::kernels::Benchmark;
use vmv::mem::MemoryModel;

fn main() {
    println!("vector-region cycles on a 2-issue +Vector2 machine, varying the number of vector lanes\n");
    print!("{:<12}", "benchmark");
    let lane_counts = [1u32, 2, 4, 8];
    for lanes in lane_counts {
        print!("{:>12}", format!("{lanes} lanes"));
    }
    println!();
    for bench in Benchmark::ALL {
        print!("{:<12}", bench.name());
        for lanes in lane_counts {
            let mut machine = vmv::machine::presets::vector2(2);
            machine.vector_lanes = lanes;
            let outcome = run_one(bench, &machine, MemoryModel::Perfect).expect("run succeeds");
            assert!(outcome.check_failures.is_empty());
            print!("{:>12}", outcome.stats.vector().cycles);
        }
        println!();
    }
    println!("\n(The paper fixes four lanes: with the short vector lengths of these kernels,\n more lanes give diminishing returns, §3.2.)");
}
