//! Cross-crate timing invariants: the interaction between the static
//! scheduler, the machine configurations and the simulator must reproduce
//! the architectural behaviours the paper relies on.

use vector_usimd_vliw as vmv;
use vmv::core::run_one;
use vmv::kernels::Benchmark;
use vmv::machine::presets;
use vmv::mem::MemoryModel;

#[test]
fn wider_usimd_machines_are_never_slower() {
    for bench in [Benchmark::JpegEnc, Benchmark::Mpeg2Dec] {
        let c2 = run_one(bench, &presets::usimd(2), MemoryModel::Perfect)
            .unwrap()
            .stats
            .cycles();
        let c4 = run_one(bench, &presets::usimd(4), MemoryModel::Perfect)
            .unwrap()
            .stats
            .cycles();
        let c8 = run_one(bench, &presets::usimd(8), MemoryModel::Perfect)
            .unwrap()
            .stats
            .cycles();
        assert!(c4 <= c2, "{}: 4w {} vs 2w {}", bench.name(), c4, c2);
        assert!(c8 <= c4, "{}: 8w {} vs 4w {}", bench.name(), c8, c4);
    }
}

#[test]
fn scalar_regions_stop_scaling_beyond_4_issue() {
    // Paper §2: the scalar regions gain little from 4→8 issue.  Average the
    // gains across benchmarks and require the 4→8 gain to be clearly smaller
    // than the 2→4 gain.
    let mut gain_24 = Vec::new();
    let mut gain_48 = Vec::new();
    for bench in Benchmark::ALL {
        let c2 = run_one(bench, &presets::usimd(2), MemoryModel::Realistic)
            .unwrap()
            .stats
            .scalar()
            .cycles as f64;
        let c4 = run_one(bench, &presets::usimd(4), MemoryModel::Realistic)
            .unwrap()
            .stats
            .scalar()
            .cycles as f64;
        let c8 = run_one(bench, &presets::usimd(8), MemoryModel::Realistic)
            .unwrap()
            .stats
            .scalar()
            .cycles as f64;
        gain_24.push(c2 / c4);
        gain_48.push(c4 / c8);
    }
    let avg24 = gain_24.iter().sum::<f64>() / gain_24.len() as f64;
    let avg48 = gain_48.iter().sum::<f64>() / gain_48.len() as f64;
    assert!(
        avg48 < avg24 && avg48 < 1.15,
        "scalar regions should saturate: 2->4w {avg24:.3}, 4->8w {avg48:.3}"
    );
}

#[test]
fn more_vector_units_help_dct_heavy_benchmarks() {
    // Paper §5.1: benchmarks with larger vector lengths / loop bodies (the
    // JPEG codecs) benefit from doubling the number of vector units.
    let v1 = run_one(
        Benchmark::JpegEnc,
        &presets::vector1(2),
        MemoryModel::Perfect,
    )
    .unwrap();
    let v2 = run_one(
        Benchmark::JpegEnc,
        &presets::vector2(2),
        MemoryModel::Perfect,
    )
    .unwrap();
    assert!(
        v2.stats.vector().cycles <= v1.stats.vector().cycles,
        "Vector2 {} should not be slower than Vector1 {}",
        v2.stats.vector().cycles,
        v1.stats.vector().cycles
    );
}

#[test]
fn four_issue_vector_machine_rivals_eight_issue_usimd() {
    // The headline claim of the paper (§5.2): a 4-issue Vector-µSIMD-VLIW
    // achieves comparable whole-application performance to the 8-issue
    // µSIMD-VLIW.  Allow a generous band — the claim is about parity, not
    // dominance on every single benchmark.
    let mut ratios = Vec::new();
    for bench in Benchmark::ALL {
        let v = run_one(bench, &presets::vector2(4), MemoryModel::Realistic)
            .unwrap()
            .stats
            .cycles() as f64;
        let u = run_one(bench, &presets::usimd(8), MemoryModel::Realistic)
            .unwrap()
            .stats
            .cycles() as f64;
        ratios.push(u / v);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg > 0.9, "4-issue Vector2 should be within 10% of 8-issue uSIMD on average, got {avg:.3} ({ratios:?})");
}

#[test]
fn chaining_does_not_hurt() {
    let mut chained = presets::vector2(2);
    chained.name = "chained".into();
    let mut unchained = chained.clone();
    unchained.chaining = false;
    unchained.name = "unchained".into();
    let with = run_one(Benchmark::Mpeg2Enc, &chained, MemoryModel::Perfect)
        .unwrap()
        .stats
        .cycles();
    let without = run_one(Benchmark::Mpeg2Enc, &unchained, MemoryModel::Perfect)
        .unwrap()
        .stats
        .cycles();
    assert!(
        with <= without,
        "chaining should never slow the code down: {with} vs {without}"
    );
}
