//! Property-based tests across the crate boundaries: the packed arithmetic,
//! the accumulators and small generated Vector-µSIMD programs must agree
//! with straightforward Rust computations for arbitrary inputs.

use proptest::prelude::*;
use vector_usimd_vliw as vmv;
use vmv::isa::packed::{self, Elem, Sat};
use vmv::isa::{Accumulator, ProgramBuilder};
use vmv::mem::MemoryModel;
use vmv::sim::Simulator;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_saturating_add_matches_lane_wise_model(a: u64, b: u64) {
        let r = packed::padd(Elem::B, Sat::Unsigned, a, b);
        for i in 0..8 {
            let x = packed::lane_u(a, Elem::B, i) as u16;
            let y = packed::lane_u(b, Elem::B, i) as u16;
            prop_assert_eq!(packed::lane_u(r, Elem::B, i), (x + y).min(255) as u64);
        }
    }

    #[test]
    fn packed_sad_matches_scalar_sum(a: u64, b: u64) {
        let expect: u64 = (0..8)
            .map(|i| {
                let x = packed::lane_u(a, Elem::B, i) as i64;
                let y = packed::lane_u(b, Elem::B, i) as i64;
                (x - y).unsigned_abs()
            })
            .sum();
        prop_assert_eq!(packed::psad_u8(a, b), expect);
    }

    #[test]
    fn pack_unpack_roundtrip(words in prop::array::uniform2(any::<u64>())) {
        // Widening the low and high halves and packing them back must be the
        // identity on unsigned bytes.
        for w in words {
            let lo = packed::pwiden_lo_u(Elem::B, w);
            let hi = packed::pwiden_hi_u(Elem::B, w);
            prop_assert_eq!(packed::ppack(Elem::H, packed::Sign::Unsigned, lo, hi), w);
        }
    }

    #[test]
    fn accumulator_mac_matches_i64_model(
        a in prop::collection::vec(any::<i16>(), 4),
        b in prop::collection::vec(any::<i16>(), 4),
    ) {
        let wa = packed::pack_i16x4([a[0], a[1], a[2], a[3]]);
        let wb = packed::pack_i16x4([b[0], b[1], b[2], b[3]]);
        let mut acc = Accumulator::zero();
        acc.mac_i16(wa, wb);
        let expect: i64 = (0..4).map(|i| a[i] as i64 * b[i] as i64).sum();
        prop_assert_eq!(acc.reduce(), expect);
    }

    #[test]
    fn simulated_vector_add_matches_rust(
        data_a in prop::collection::vec(any::<u8>(), 128),
        data_b in prop::collection::vec(any::<u8>(), 128),
    ) {
        let mut b = ProgramBuilder::new("prop_vadd");
        let a_ptr = b.imm(0x1000);
        let b_ptr = b.imm(0x2000);
        let o_ptr = b.imm(0x3000);
        b.setvl(16);
        b.setvs(8);
        let x = b.rv();
        let y = b.rv();
        b.vload(x, a_ptr, 0);
        b.vload(y, b_ptr, 0);
        let s = b.rv();
        b.vadd(Elem::B, Sat::Unsigned, s, x, y);
        b.vstore(o_ptr, 0, s);
        b.halt();
        let program = b.finish();

        let machine = vmv::machine::presets::vector2(2);
        let compiled = vmv::sched::compile(&program, &machine).unwrap();
        let mut sim = Simulator::with_model(&machine, MemoryModel::Perfect);
        sim.mem.write_u8_slice(0x1000, &data_a);
        sim.mem.write_u8_slice(0x2000, &data_b);
        sim.run(&compiled.program).unwrap();
        let out = sim.mem.read_u8_slice(0x3000, 128);
        let expect: Vec<u8> =
            data_a.iter().zip(&data_b).map(|(&p, &q)| p.saturating_add(q)).collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn quantisation_is_exact_for_random_coefficients(
        coefs in prop::collection::vec(-2000i16..2000, 64),
    ) {
        // The same reciprocal-multiplication quantisation through the
        // reference implementation and through the simulated µSIMD kernel.
        let recips = vmv::kernels::data::quant_reciprocals(50);
        let expect = vmv::kernels::reference::quantize(&coefs, &recips);

        let mut b = ProgramBuilder::new("prop_quant");
        b.begin_region(1, "quant");
        vmv::kernels::patterns::pixel::emit_quantize(
            &mut b,
            vmv::kernels::IsaVariant::Usimd,
            &vmv::kernels::patterns::pixel::QuantParams {
                coef_addr: 0x1000,
                recip_addr: 0x2000,
                out_addr: 0x3000,
                n: 64,
            },
        );
        b.end_region();
        b.halt();
        let program = b.finish();
        let machine = vmv::machine::presets::usimd(2);
        let compiled = vmv::sched::compile(&program, &machine).unwrap();
        let mut sim = Simulator::with_model(&machine, MemoryModel::Perfect);
        sim.mem.write_i16_slice(0x1000, &coefs);
        sim.mem.write_i16_slice(0x2000, &recips);
        sim.run(&compiled.program).unwrap();
        prop_assert_eq!(sim.mem.read_i16_slice(0x3000, 64), expect);
    }
}
