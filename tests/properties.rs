//! Property-style tests across the crate boundaries: the packed arithmetic,
//! the accumulators and small generated Vector-µSIMD programs must agree
//! with straightforward Rust computations for arbitrary inputs.
//!
//! The inputs are drawn from the workspace's own deterministic PRNG
//! (`vmv_kernels::rng::SmallRng`) instead of an external property-testing
//! crate, so the workspace stays dependency-free.  Every case is seeded, so
//! a failure reproduces exactly.

use vector_usimd_vliw as vmv;
use vmv::isa::packed::{self, Elem, Sat};
use vmv::isa::{Accumulator, ProgramBuilder};
use vmv::kernels::rng::SmallRng;
use vmv::mem::MemoryModel;
use vmv::sim::Simulator;

const CASES: u64 = 64;

fn rand_u64(rng: &mut SmallRng) -> u64 {
    rng.next_u64()
}

fn rand_vec_u8(rng: &mut SmallRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

fn rand_vec_i16(rng: &mut SmallRng, n: usize, lo: i64, hi: i64) -> Vec<i16> {
    (0..n).map(|_| rng.gen_range_i64(lo, hi) as i16).collect()
}

#[test]
fn packed_saturating_add_matches_lane_wise_model() {
    let mut rng = SmallRng::seed_from_u64(0x5AD0);
    for case in 0..CASES {
        let a = rand_u64(&mut rng);
        let b = rand_u64(&mut rng);
        let r = packed::padd(Elem::B, Sat::Unsigned, a, b);
        for i in 0..8 {
            let x = packed::lane_u(a, Elem::B, i) as u16;
            let y = packed::lane_u(b, Elem::B, i) as u16;
            assert_eq!(
                packed::lane_u(r, Elem::B, i),
                (x + y).min(255) as u64,
                "case {case}: a={a:#x} b={b:#x} lane {i}"
            );
        }
    }
}

#[test]
fn packed_sad_matches_scalar_sum() {
    let mut rng = SmallRng::seed_from_u64(0x5AD1);
    for case in 0..CASES {
        let a = rand_u64(&mut rng);
        let b = rand_u64(&mut rng);
        let expect: u64 = (0..8)
            .map(|i| {
                let x = packed::lane_u(a, Elem::B, i) as i64;
                let y = packed::lane_u(b, Elem::B, i) as i64;
                (x - y).unsigned_abs()
            })
            .sum();
        assert_eq!(
            packed::psad_u8(a, b),
            expect,
            "case {case}: a={a:#x} b={b:#x}"
        );
    }
}

#[test]
fn pack_unpack_roundtrip() {
    // Widening the low and high halves and packing them back must be the
    // identity on unsigned bytes.
    let mut rng = SmallRng::seed_from_u64(0x5AD2);
    for case in 0..CASES {
        for w in [rand_u64(&mut rng), rand_u64(&mut rng)] {
            let lo = packed::pwiden_lo_u(Elem::B, w);
            let hi = packed::pwiden_hi_u(Elem::B, w);
            assert_eq!(
                packed::ppack(Elem::H, packed::Sign::Unsigned, lo, hi),
                w,
                "case {case}: w={w:#x}"
            );
        }
    }
}

#[test]
fn accumulator_mac_matches_i64_model() {
    let mut rng = SmallRng::seed_from_u64(0x5AD3);
    for case in 0..CASES {
        let a = rand_vec_i16(&mut rng, 4, i16::MIN as i64, i16::MAX as i64);
        let b = rand_vec_i16(&mut rng, 4, i16::MIN as i64, i16::MAX as i64);
        let wa = packed::pack_i16x4([a[0], a[1], a[2], a[3]]);
        let wb = packed::pack_i16x4([b[0], b[1], b[2], b[3]]);
        let mut acc = Accumulator::zero();
        acc.mac_i16(wa, wb);
        let expect: i64 = (0..4).map(|i| a[i] as i64 * b[i] as i64).sum();
        assert_eq!(acc.reduce(), expect, "case {case}: a={a:?} b={b:?}");
    }
}

#[test]
fn simulated_vector_add_matches_rust() {
    let mut rng = SmallRng::seed_from_u64(0x5AD4);
    for case in 0..8 {
        let data_a = rand_vec_u8(&mut rng, 128);
        let data_b = rand_vec_u8(&mut rng, 128);

        let mut b = ProgramBuilder::new("prop_vadd");
        let a_ptr = b.imm(0x1000);
        let b_ptr = b.imm(0x2000);
        let o_ptr = b.imm(0x3000);
        b.setvl(16);
        b.setvs(8);
        let x = b.rv();
        let y = b.rv();
        b.vload(x, a_ptr, 0);
        b.vload(y, b_ptr, 0);
        let s = b.rv();
        b.vadd(Elem::B, Sat::Unsigned, s, x, y);
        b.vstore(o_ptr, 0, s);
        b.halt();
        let program = b.finish();

        let machine = vmv::machine::presets::vector2(2);
        let compiled = vmv::sched::compile(&program, &machine).unwrap();
        let mut sim = Simulator::with_model(&machine, MemoryModel::Perfect);
        sim.mem.write_u8_slice(0x1000, &data_a);
        sim.mem.write_u8_slice(0x2000, &data_b);
        sim.run(&compiled.program).unwrap();
        let out = sim.mem.read_u8_slice(0x3000, 128);
        let expect: Vec<u8> = data_a
            .iter()
            .zip(&data_b)
            .map(|(&p, &q)| p.saturating_add(q))
            .collect();
        assert_eq!(out, expect, "case {case}");
    }
}

#[test]
fn touched_line_closed_forms_match_the_naive_walk() {
    // The memory hierarchy enumerates the cache lines of a constant-stride
    // vector access through closed forms (contiguous range / arithmetic
    // sequence); the naive per-element walk is the retained oracle.  For
    // random base/stride/elems and every realistic line size, the two must
    // produce the same line *set* (the closed forms emit distinct lines in
    // a canonical order; the naive walk dedups in first-touch order).
    use vmv::mem::lines;
    let mut rng = SmallRng::seed_from_u64(0x11E5);
    let mut scratch = Vec::new();
    for case in 0..512 {
        let line = [32u64, 64, 128][rng.gen_range_i64(0, 2) as usize];
        let base = rng.gen_range_i64(0, 1 << 20) as u64;
        let stride = match case % 4 {
            0 => 8,                                     // unit stride
            1 => rng.gen_range_i64(-64, 64),            // small strides (and 0)
            2 => rng.gen_range_i64(1, 8) * line as i64, // line-multiple strides
            _ => rng.gen_range_i64(-2048, 2048),        // arbitrary odd strides
        };
        let elems = rng.gen_range_i64(1, 16) as u32;

        let mut expect = Vec::new();
        lines::collect_naive(base, stride, elems, line, &mut expect);
        let n = lines::collect(base, stride, elems, line, &mut scratch);
        assert_eq!(n as usize, scratch.len());

        let mut got = scratch.clone();
        got.sort_unstable();
        got.dedup();
        let mut want = expect.clone();
        want.sort_unstable();
        assert_eq!(
            got, want,
            "case {case}: base={base:#x} stride={stride} elems={elems} line={line}"
        );
        assert_eq!(
            scratch.len(),
            expect.len(),
            "case {case}: closed form must emit distinct lines only"
        );
    }
}

#[test]
fn swar_packed_ops_match_the_lanewise_reference() {
    // Every SWAR fast path in vmv_isa::packed against its retained
    // one-lane-at-a-time reference, on random words.
    use vmv::isa::packed::{lanewise, Sign};
    let mut rng = SmallRng::seed_from_u64(0x57A2);
    for case in 0..CASES * 4 {
        let a = rand_u64(&mut rng);
        let b = rand_u64(&mut rng);
        for e in [Elem::B, Elem::H, Elem::W] {
            for sat in [Sat::Wrap, Sat::Signed, Sat::Unsigned] {
                assert_eq!(
                    packed::padd(e, sat, a, b),
                    lanewise::padd(e, sat, a, b),
                    "case {case}: padd {e:?} {sat:?} a={a:#x} b={b:#x}"
                );
                assert_eq!(
                    packed::psub(e, sat, a, b),
                    lanewise::psub(e, sat, a, b),
                    "case {case}: psub {e:?} {sat:?} a={a:#x} b={b:#x}"
                );
            }
            for sign in [Sign::Signed, Sign::Unsigned] {
                assert_eq!(packed::pmin(e, sign, a, b), lanewise::pmin(e, sign, a, b));
                assert_eq!(packed::pmax(e, sign, a, b), lanewise::pmax(e, sign, a, b));
            }
            assert_eq!(packed::pavg_u(e, a, b), lanewise::pavg_u(e, a, b));
            assert_eq!(packed::pabsdiff_u(e, a, b), lanewise::pabsdiff_u(e, a, b));
            assert_eq!(packed::pcmp_eq(e, a, b), lanewise::pcmp_eq(e, a, b));
            assert_eq!(packed::pcmp_gt(e, a, b), lanewise::pcmp_gt(e, a, b));
            let amount = (rng.next_u64() % (e.bits() as u64 + 2)) as u32;
            assert_eq!(
                packed::pshl(e, a, amount),
                lanewise::pshl(e, a, amount),
                "case {case}: pshl {e:?} by {amount}"
            );
            assert_eq!(packed::pshr_l(e, a, amount), lanewise::pshr_l(e, a, amount));
            assert_eq!(packed::pshr_a(e, a, amount), lanewise::pshr_a(e, a, amount));
            assert_eq!(packed::splat(e, a), lanewise::splat(e, a));
        }
        assert_eq!(packed::psad_u8(a, b), lanewise::psad_u8(a, b));
    }
}

#[test]
fn quantisation_is_exact_for_random_coefficients() {
    // The same reciprocal-multiplication quantisation through the
    // reference implementation and through the simulated µSIMD kernel.
    let mut rng = SmallRng::seed_from_u64(0x5AD5);
    for case in 0..8 {
        let coefs = rand_vec_i16(&mut rng, 64, -2000, 1999);
        let recips = vmv::kernels::data::quant_reciprocals(50);
        let expect = vmv::kernels::reference::quantize(&coefs, &recips);

        let mut b = ProgramBuilder::new("prop_quant");
        b.begin_region(1, "quant");
        vmv::kernels::patterns::pixel::emit_quantize(
            &mut b,
            vmv::kernels::IsaVariant::Usimd,
            &vmv::kernels::patterns::pixel::QuantParams {
                coef_addr: 0x1000,
                recip_addr: 0x2000,
                out_addr: 0x3000,
                n: 64,
            },
        );
        b.end_region();
        b.halt();
        let program = b.finish();
        let machine = vmv::machine::presets::usimd(2);
        let compiled = vmv::sched::compile(&program, &machine).unwrap();
        let mut sim = Simulator::with_model(&machine, MemoryModel::Perfect);
        sim.mem.write_i16_slice(0x1000, &coefs);
        sim.mem.write_i16_slice(0x2000, &recips);
        sim.run(&compiled.program).unwrap();
        assert_eq!(sim.mem.read_i16_slice(0x3000, 64), expect, "case {case}");
    }
}
