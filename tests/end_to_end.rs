//! Workspace-level integration tests: every benchmark, compiled and executed
//! on representative machines of each ISA family, must be functionally
//! bit-exact and must show the performance ordering the paper reports.

use vector_usimd_vliw as vmv;
use vmv::core::{run_one, variant_for};
use vmv::kernels::{Benchmark, IsaVariant};
use vmv::machine::presets;
use vmv::mem::MemoryModel;

#[test]
fn every_benchmark_is_bit_exact_on_every_isa_family() {
    for bench in Benchmark::ALL {
        for machine in [presets::vliw(2), presets::usimd(2), presets::vector1(2)] {
            let outcome = run_one(bench, &machine, MemoryModel::Perfect)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name(), machine.name));
            assert!(
                outcome.check_failures.is_empty(),
                "{} on {} failed checks: {:?}",
                bench.name(),
                machine.name,
                outcome.check_failures
            );
        }
    }
}

#[test]
fn realistic_memory_never_beats_perfect_memory() {
    for bench in [Benchmark::JpegEnc, Benchmark::GsmEnc] {
        let machine = presets::vector2(2);
        let perfect = run_one(bench, &machine, MemoryModel::Perfect).unwrap();
        let realistic = run_one(bench, &machine, MemoryModel::Realistic).unwrap();
        assert!(
            realistic.stats.cycles() >= perfect.stats.cycles(),
            "{}: realistic {} < perfect {}",
            bench.name(),
            realistic.stats.cycles(),
            perfect.stats.cycles()
        );
    }
}

#[test]
fn vector_isa_outperforms_usimd_in_the_vector_regions() {
    // Paper §5.1: the 2-issue Vector2 outperforms the 2-issue µSIMD in the
    // vector regions by large factors on every benchmark.
    for bench in Benchmark::ALL {
        let usimd = run_one(bench, &presets::usimd(2), MemoryModel::Perfect).unwrap();
        let vector = run_one(bench, &presets::vector2(2), MemoryModel::Perfect).unwrap();
        assert!(
            vector.stats.vector().cycles < usimd.stats.vector().cycles,
            "{}: vector regions {} vs {}",
            bench.name(),
            vector.stats.vector().cycles,
            usimd.stats.vector().cycles
        );
    }
}

#[test]
fn vector_isa_fetches_far_fewer_operations() {
    // Paper §5.3: the vector versions execute much fewer operations in the
    // vector regions than the µSIMD versions.
    for bench in Benchmark::ALL {
        let usimd = run_one(bench, &presets::usimd(2), MemoryModel::Perfect).unwrap();
        let vector = run_one(bench, &presets::vector2(2), MemoryModel::Perfect).unwrap();
        let u = usimd.stats.vector().operations as f64;
        let v = vector.stats.vector().operations as f64;
        assert!(
            v < 0.6 * u,
            "{}: {} vs {} vector-region operations",
            bench.name(),
            v,
            u
        );
    }
}

#[test]
fn scalar_regions_are_insensitive_to_the_isa_extension() {
    // The scalar regions are the same code in every variant; on machines
    // with the same issue width their cycle counts should be very close
    // (they only differ through cache interactions).
    for bench in [Benchmark::JpegDec, Benchmark::GsmDec] {
        let usimd = run_one(bench, &presets::usimd(2), MemoryModel::Perfect).unwrap();
        let vector = run_one(bench, &presets::vector2(2), MemoryModel::Perfect).unwrap();
        let a = usimd.stats.scalar().cycles as f64;
        let b = vector.stats.scalar().cycles as f64;
        assert!(
            (a - b).abs() / a.max(b) < 0.05,
            "{}: {} vs {}",
            bench.name(),
            a,
            b
        );
    }
}

#[test]
fn configurations_pick_the_matching_kernel_variant() {
    assert_eq!(variant_for(&presets::vliw(8)), IsaVariant::Scalar);
    assert_eq!(variant_for(&presets::usimd(4)), IsaVariant::Usimd);
    assert_eq!(variant_for(&presets::vector1(2)), IsaVariant::Vector);
}

#[test]
fn strided_mpeg2_encoder_degrades_more_than_jpeg_under_realistic_memory() {
    // Paper §5.1 / Fig. 5b: the motion-estimation strides make mpeg2_enc
    // degrade far more than the unit-stride JPEG pipeline when the memory
    // hierarchy is simulated.  (Since the miss-penalty model started
    // charging the *actual* strided line addresses, the absolute worst
    // degradation on this machine is workload-dependent — the robust paper
    // claim is the stride sensitivity, asserted here.)
    let machine = presets::vector2(2);
    let mut degradations = Vec::new();
    for bench in [Benchmark::Mpeg2Enc, Benchmark::JpegEnc] {
        let perfect = run_one(bench, &machine, MemoryModel::Perfect).unwrap();
        let realistic = run_one(bench, &machine, MemoryModel::Realistic).unwrap();
        degradations.push((
            bench,
            realistic.stats.vector().cycles as f64 / perfect.stats.vector().cycles.max(1) as f64,
        ));
    }
    assert!(
        degradations[0].1 > degradations[1].1,
        "degradations: {degradations:?}"
    );
}
