//! Observatory determinism: `report trend` and `report html` rendered from
//! the demo sweep (and a synthetic bench trajectory) must reproduce the
//! committed goldens byte for byte.
//!
//! Regenerate after an intentional rendering change with
//! `UPDATE_GOLDENS=1 cargo test --test observatory_golden`.

use std::path::PathBuf;

use vector_usimd_vliw as vmv;

use vmv::report::{
    bench_trend_md, bench_trend_svg, compare, html, markdown, pareto_report, parse_trajectory,
    sensitivity, store_trend, trend_md, trend_svg, LoadedStore, ResolvedStore,
};
use vmv::sweep::{run_sweep, ExecOptions, Json, SpecFile};

/// Run the embedded demo spec in-process and return the store text exactly
/// as `sweep --demo` writes it.
fn demo_store_text() -> String {
    let spec = SpecFile::demo();
    let lowered = spec.lower().expect("demo spec lowers");
    let points = lowered.spec.expand().points;
    let report = run_sweep(&points, &ExecOptions::for_spec(&lowered, 0), None).expect("sweep runs");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let mut text = format!("{}\n", spec.store_header().to_json().render());
    for r in &report.records {
        text.push_str(&r.to_json().render());
        text.push('\n');
    }
    text
}

/// A deterministic "later night": the same store with one benchmark's
/// cycle counts scaled by num/den (run keys identify the run, not its
/// result, so the trend joins the rows).
fn drifted(store_text: &str, benchmark: &str, num: u64, den: u64) -> String {
    store_text
        .lines()
        .map(|line| {
            let mut j = Json::parse(line).expect("store line parses");
            if let Json::Obj(fields) = &mut j {
                let matches = fields
                    .iter()
                    .any(|(k, v)| k == "benchmark" && v.as_str() == Some(benchmark));
                if matches {
                    for (k, v) in fields.iter_mut() {
                        if k == "cycles" {
                            let c = v.as_u64().expect("integer cycles");
                            *v = Json::u64(c * num / den);
                        }
                    }
                }
            }
            format!("{}\n", j.render())
        })
        .collect()
}

fn load_as(text: &str, name: &str) -> LoadedStore {
    let mut s = LoadedStore::from_text(text);
    assert!(s.diagnostics.is_empty(), "{:?}", s.diagnostics);
    s.path = PathBuf::from(format!("{name}.jsonl"));
    s
}

/// Three nights of the demo experiment: baseline, then GSM_ENC drifting
/// slower while GSM_DEC picks up a small win.
fn three_nights() -> Vec<LoadedStore> {
    let night1 = demo_store_text();
    let night2 = drifted(&night1, "GSM_ENC", 102, 100);
    let night3 = drifted(&drifted(&night1, "GSM_ENC", 105, 100), "GSM_DEC", 99, 100);
    vec![
        load_as(&night1, "night1"),
        load_as(&night2, "night2"),
        load_as(&night3, "night3"),
    ]
}

/// A synthetic 3-entry trajectory: the legacy unstamped first entry, then
/// two stamped nights with moving throughput.
const TRAJECTORY: &str = r#"[
{"name": "bench_sim", "table2_wall_seconds": 0.61, "synthetic_wall_seconds": 0.09, "table2": {"simulated_cycles_per_second": 50000000}, "synthetic": {"simulated_cycles_per_second": 61000000}},
{"name": "bench_sim", "host": "ci", "commit": "aaaaaaaaaaaa", "unix_time": 1700000000, "repeat": 1, "table2_wall_seconds": 0.58, "synthetic_wall_seconds": 0.08, "table2": {"simulated_cycles_per_second": 53000000}, "synthetic": {"simulated_cycles_per_second": 64000000}},
{"name": "bench_sim", "host": "ci", "commit": "bbbbbbbbbbbb", "unix_time": 1700086400, "repeat": 3, "table2_wall_seconds": 0.60, "synthetic_wall_seconds": 0.08, "table2": {"simulated_cycles_per_second": 52000000}, "synthetic": {"simulated_cycles_per_second": 66000000}}
]"#;

/// Compare `actual` against the committed golden, or rewrite it when
/// `UPDATE_GOLDENS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}) — run with UPDATE_GOLDENS=1"));
    assert!(
        actual == expected,
        "{name} drifted from the committed golden — if the rendering change \
         is intentional, regenerate with `UPDATE_GOLDENS=1 cargo test --test \
         observatory_golden`"
    );
}

#[test]
fn store_trend_matches_the_committed_goldens() {
    let stores = three_nights();
    let refs: Vec<&LoadedStore> = stores.iter().collect();
    let t = store_trend(&refs);
    assert!(t.warnings.is_empty(), "{:?}", t.warnings);
    assert_eq!(t.columns, ["1:night1", "2:night2", "3:night3"]);
    assert_eq!(t.rows.len(), 224, "112 points x GSM pair, all joined");
    // Every GSM_ENC row regressed 5%, every GSM_DEC row improved 1%; the
    // regressions sort first.
    assert!(t.rows[0].benchmark == "GSM_ENC" && t.rows[0].ratio > Some(1.0));
    assert!(t.rows.last().unwrap().benchmark == "GSM_DEC");
    check_golden("demo_trend.md", &trend_md(&t));
    check_golden("demo_trend.svg", &trend_svg(&t));
}

#[test]
fn bench_trend_matches_the_committed_goldens() {
    let doc = Json::parse(TRAJECTORY).expect("trajectory parses");
    let points = parse_trajectory(&doc).expect("trajectory points");
    assert_eq!(points.len(), 3);
    assert_eq!(points[0].host, "unknown", "legacy entry normalized");
    assert_eq!(points[0].unix_time, 0);
    assert_eq!(points[2].commit, "bbbbbbbbbbbb");
    check_golden("bench_trend.md", &bench_trend_md(&points));
    check_golden("bench_trend.svg", &bench_trend_svg(&points));
}

#[test]
fn observatory_page_matches_the_committed_golden() {
    let stores = three_nights();
    let refs: Vec<&LoadedStore> = stores.iter().collect();
    let newest = refs.last().unwrap();
    let resolved = ResolvedStore::resolve(newest).expect("demo store resolves");
    assert_eq!(resolved.unmatched, 0);

    let name = resolved.spec.name.clone();
    let report = compare(&newest.records, &stores[0].records);
    let sections = vec![
        html::pareto_section(&name, &pareto_report(&resolved.points, &resolved.records)),
        html::sensitivity_section(&name, &sensitivity(&resolved.points, &resolved.records)),
        html::compare_section(
            "night1",
            &report,
            &markdown::rows_by_benchmark(&report.rows),
        ),
        html::trend_section(&store_trend(&refs)),
        html::bench_section(
            &parse_trajectory(&Json::parse(TRAJECTORY).unwrap()).expect("trajectory points"),
        ),
    ];
    let subtitle = format!("spec {name} — fingerprint {}", resolved.spec.fingerprint());
    let page = html::page(&format!("vmv observatory — {name}"), &subtitle, &sections);
    assert!(page.starts_with("<!DOCTYPE html>"));
    assert!(!page.contains("<script"), "self-contained static page");
    check_golden("observatory_index.html", &page);
}
