//! Round-trip guarantees of the declarative sweep API: a spec file that is
//! serialized, re-parsed and lowered must describe *exactly* the same
//! experiment — same point count, same point names, same content-derived
//! run keys — as the original (and as the legacy closure-built spec it
//! replaced), and malformed spec files must fail with actionable messages.

use vector_usimd_vliw as vmv;
use vmv::kernels::Benchmark;
use vmv::sweep::specfile::{AxisSpec, ConstraintSpec, SpecDefaults, SpecFile};
use vmv::sweep::{run_key, Axis, LoweredSpec, SweepSpec};

/// Every `(point, benchmark)` run key of a lowered spec, in job order.
fn run_keys(lowered: &LoweredSpec) -> Vec<String> {
    let points = lowered.spec.expand().points;
    points
        .iter()
        .flat_map(|p| {
            let variant = vmv::core::variant_for(&p.machine);
            lowered
                .benchmarks
                .iter()
                .map(move |&b| run_key(b, variant, &p.machine, p.model))
        })
        .collect()
}

/// The demo spec file must be indistinguishable — run key for run key —
/// from the closure-built spec the pre-declarative sweep binary hardcoded.
/// This is the "--demo results are bit-identical" guarantee: same keys mean
/// the same machines, models and benchmarks, so the simulator produces the
/// same records.
#[test]
fn demo_spec_file_reproduces_the_legacy_hardcoded_sweep() {
    let legacy = SweepSpec::new()
        .axis(Axis::issue_width(&[2, 4]))
        .axis(Axis::vector_units(&[1, 2, 4]))
        .axis(Axis::vector_lanes(&[1, 2, 4, 8, 16]))
        .axis(Axis::l2_size(&[128 * 1024, 256 * 1024]))
        .axis(Axis::mem_latency(&[100, 500]))
        .constraint("lane budget: units x lanes <= 32", |m, _| {
            m.vector_units as u32 * m.vector_lanes <= 32
        });
    let legacy_lowered = LoweredSpec {
        spec: legacy,
        benchmarks: vec![Benchmark::GsmDec, Benchmark::GsmEnc],
    };

    let demo = SpecFile::demo();
    let lowered = demo.lower().expect("demo spec lowers");
    assert_eq!(run_keys(&lowered), run_keys(&legacy_lowered));
    assert_eq!(lowered.spec.expand().points.len(), 112);

    // ... and serialization round-trips preserve all of it.
    let reparsed = SpecFile::parse(&demo.canonical().render()).unwrap();
    assert_eq!(reparsed, demo);
    assert_eq!(reparsed.fingerprint(), demo.fingerprint());
    assert_eq!(run_keys(&reparsed.lower().unwrap()), run_keys(&lowered));
}

/// The committed example specs must stay parseable, non-trivial and cheap
/// enough for CI to run end-to-end.
#[test]
fn committed_example_specs_parse_and_expand() {
    for (path, min_points) in [
        ("examples/specs/latency_tolerance.json", 18),
        ("examples/specs/wider_issue.json", 10),
    ] {
        let text = std::fs::read_to_string(path).expect(path);
        let spec = SpecFile::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        let lowered = spec.lower().unwrap();
        let expansion = lowered.spec.expand();
        assert!(
            expansion.points.len() >= min_points,
            "{path}: only {} points",
            expansion.points.len()
        );
        assert!(
            expansion.points.len() * lowered.benchmarks.len() <= 100,
            "{path}: too big for a CI smoke run"
        );
        // Canonicalization is whitespace-insensitive: the pretty-printed
        // committed file and its compact form describe the same experiment.
        let compact = SpecFile::parse(&spec.canonical().render()).unwrap();
        assert_eq!(compact.fingerprint(), spec.fingerprint());
    }
}

/// xorshift64* — the same seeded-PRNG idiom the other property tests use.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn pick<'a, T>(&mut self, pool: &'a [T]) -> &'a T {
        &pool[(self.next() % pool.len() as u64) as usize]
    }
    /// 1..=max distinct values sampled from a pool.
    fn subset<T: Copy + PartialEq>(&mut self, pool: &[T], max: usize) -> Vec<T> {
        let want = 1 + (self.next() as usize) % max.min(pool.len());
        let mut out: Vec<T> = Vec::new();
        while out.len() < want {
            let v = *self.pick(pool);
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

fn random_spec(rng: &mut Rng) -> SpecFile {
    let mut axes: Vec<AxisSpec> = Vec::new();
    // Small value pools keep expansion cheap (≤ a few dozen points).
    if rng.next().is_multiple_of(2) {
        axes.push(AxisSpec::IssueWidth(rng.subset(&[2usize, 4, 8, 16], 2)));
    }
    if rng.next().is_multiple_of(2) {
        axes.push(AxisSpec::VectorLanes(rng.subset(&[1u32, 2, 4, 8, 16], 2)));
    }
    if rng.next().is_multiple_of(2) {
        axes.push(AxisSpec::L2Size(rng.subset(&[128 * 1024, 256 * 1024], 2)));
    }
    if rng.next().is_multiple_of(2) {
        axes.push(AxisSpec::MemLatency(rng.subset(&[100u32, 300, 500], 2)));
    }
    if rng.next().is_multiple_of(2) {
        axes.push(AxisSpec::Chaining(rng.subset(&[true, false], 2)));
    }
    if rng.next().is_multiple_of(2) {
        axes.push(AxisSpec::Benchmarks(rng.subset(&Benchmark::ALL, 3)));
    }
    let mut constraints = Vec::new();
    if rng.next().is_multiple_of(3) {
        constraints.push(ConstraintSpec::LaneBudget {
            max: *rng.pick(&[4u32, 16, 32]),
        });
    }
    SpecFile {
        name: format!("prop_{}", rng.next() % 1000),
        axes,
        constraints,
        defaults: SpecDefaults {
            threads: (rng.next().is_multiple_of(2)).then_some((rng.next() % 8) as usize),
            shard: (rng.next().is_multiple_of(4)).then_some((0, 2)),
            out: (rng.next().is_multiple_of(2)).then(|| "prop.jsonl".to_string()),
        },
    }
}

/// Seeded property test: for 64 random spec files, canonical JSON →
/// parse → lower → expand is lossless (same canonical form, same
/// fingerprint, same point count and names), through both the compact and
/// the pretty renderer.
#[test]
fn random_specs_round_trip_losslessly() {
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);
    for case in 0..64 {
        let spec = random_spec(&mut rng);
        let compact = spec.canonical().render();
        let pretty = spec.canonical().render_pretty();
        for text in [&compact, &pretty] {
            let back = SpecFile::parse(text)
                .unwrap_or_else(|e| panic!("case {case}: {e}\nspec: {compact}"));
            assert_eq!(back, spec, "case {case}");
            assert_eq!(back.canonical().render(), compact, "case {case}");
            assert_eq!(back.fingerprint(), spec.fingerprint(), "case {case}");
        }
        let original = spec.lower().unwrap();
        let reparsed = SpecFile::parse(&compact).unwrap().lower().unwrap();
        assert_eq!(reparsed.benchmarks, original.benchmarks, "case {case}");
        let a = original.spec.expand();
        let b = reparsed.spec.expand();
        assert_eq!(a.points.len(), b.points.len(), "case {case}");
        assert_eq!(a.rejected, b.rejected, "case {case}");
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.name, pb.name, "case {case}");
        }
        assert_eq!(run_keys(&original), run_keys(&reparsed), "case {case}");
    }
}

/// Golden parse errors at the public API surface: the messages a user sees
/// must name the offending construct and the accepted alternatives.
#[test]
fn malformed_spec_files_fail_with_actionable_messages() {
    let unknown_axis =
        SpecFile::parse(r#"{"axes": [{"axis": "l9_size", "values": [8]}]}"#).unwrap_err();
    assert!(unknown_axis.message.contains("unknown axis 'l9_size'"));
    assert!(
        unknown_axis.message.contains("mem_latency"),
        "should list the known axes: {}",
        unknown_axis.message
    );

    let bad_type = SpecFile::parse(r#"{"axes": [{"axis": "mem_latency", "values": [100, true]}]}"#)
        .unwrap_err();
    assert!(
        bad_type.message.contains("'mem_latency', value 2") && bad_type.message.contains("true"),
        "should pinpoint the bad value: {}",
        bad_type.message
    );

    let duplicate = SpecFile::parse(
        r#"{"axes": [{"axis": "chaining", "values": [true]},
                     {"axis": "chaining", "values": [false]}]}"#,
    )
    .unwrap_err();
    assert!(duplicate.message.contains("duplicate axis 'chaining'"));

    let bad_bench =
        SpecFile::parse(r#"{"axes": [{"axis": "benchmarks", "values": ["JPEG"]}]}"#).unwrap_err();
    assert!(
        bad_bench.message.contains("unknown benchmark") && bad_bench.message.contains("JPEG_ENC"),
        "should list the known benchmarks: {}",
        bad_bench.message
    );
}
