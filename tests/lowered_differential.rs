//! Differential harness for the lowered execution engine.
//!
//! The simulator has three interpretation loops: the original string-keyed
//! reference engine (`Simulator::run_reference` — hash-map scoreboard,
//! label-map branch resolution, per-operation metadata re-derivation), the
//! lowered hot path (`Simulator::run_lowered` — slot-indexed scoreboard
//! over the pre-resolved `LoweredProgram`), and the trace-replay retimer
//! (`vmv_sim::replay` — no functional execution at all, just the recorded
//! block/access/VL streams walked against a fresh memory hierarchy).  The
//! batched retimer (`vmv_sim::replay_batch`) is a fourth leg: one fused
//! walk advancing every memory variant in lockstep.  Any timing-semantics
//! change is only sound if all four agree *exactly*: same cycles, same
//! stalls, same per-region breakdown, same memory-system counters, on
//! every workload and machine.
//!
//! This harness proves that on all ten Table 2 presets across the complete
//! kernel suite, under both memory models.  The replay leg is deliberately
//! cross-model: the trace is recorded **once under perfect memory** and
//! replayed under both models, which is exactly how the sweep executor
//! reuses one trace across a memory axis.

use vector_usimd_vliw as vmv;
use vmv::core::{prepare, variant_for};
use vmv::kernels::Benchmark;
use vmv::machine::all_configs;
use vmv::mem::MemoryModel;
use vmv::sim::{SimOptions, Simulator};

/// Run one prepared benchmark through the given engine.
fn run_with(
    prepared: &vmv::core::Prepared,
    machine: &vmv::machine::MachineConfig,
    model: MemoryModel,
    lowered: bool,
) -> vmv::sim::RunStats {
    let mut sim = Simulator::new(
        machine,
        SimOptions {
            memory_model: model,
            mem_size: prepared.build.mem_size.max(1 << 20),
            max_cycles: 2_000_000_000,
        },
    );
    for (addr, bytes) in &prepared.build.init {
        sim.mem.write_bytes(*addr, bytes);
    }
    if lowered {
        sim.run_lowered(&prepared.lowered).expect("lowered run")
    } else {
        sim.run_reference(&prepared.compiled.program)
            .expect("reference run")
    }
}

#[test]
fn lowered_engine_matches_reference_on_all_table2_presets() {
    let configs = all_configs();
    assert_eq!(configs.len(), 10, "Table 2 has ten configurations");
    let mut compared = 0usize;
    for machine in &configs {
        for bench in Benchmark::ALL {
            let prepared = prepare(bench, machine)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name(), machine.name));
            // Record the trace once, under perfect memory; the replay leg
            // below retimes it under *both* models (the cross-model reuse
            // the sweep's trace cache depends on).
            let (recorded_stats, trace) = {
                let mut sim = Simulator::new(
                    machine,
                    SimOptions {
                        memory_model: MemoryModel::Perfect,
                        mem_size: prepared.build.mem_size.max(1 << 20),
                        max_cycles: 2_000_000_000,
                    },
                );
                for (addr, bytes) in &prepared.build.init {
                    sim.mem.write_bytes(*addr, bytes);
                }
                sim.run_lowered_recording(&prepared.lowered)
                    .expect("recording run")
            };
            // Fourth leg: one batched walk retimes the trace under both
            // models at once; per-variant results are compared against the
            // reference engine inside the model loop below.
            let analysis = vmv::sim::ReplayAnalysis::build(&prepared.lowered);
            let mut variants = vec![
                vmv::sim::VariantState::new(
                    &analysis,
                    machine,
                    MemoryModel::Perfect,
                    2_000_000_000,
                ),
                vmv::sim::VariantState::new(
                    &analysis,
                    machine,
                    MemoryModel::Realistic,
                    2_000_000_000,
                ),
            ];
            let batched =
                vmv::sim::replay_batch(&trace, &analysis, &mut variants).unwrap_or_else(|e| {
                    panic!("replay_batch: {} on {}: {e}", bench.name(), machine.name)
                });
            for (bi, model) in [MemoryModel::Perfect, MemoryModel::Realistic]
                .into_iter()
                .enumerate()
            {
                let reference = run_with(&prepared, machine, model, false);
                let lowered = run_with(&prepared, machine, model, true);
                assert_eq!(
                    reference,
                    lowered,
                    "RunStats diverged: {} ({}) on {} under {:?}",
                    bench.name(),
                    variant_for(machine).name(),
                    machine.name,
                    model
                );
                let replayed =
                    vmv::sim::replay(&prepared.lowered, &trace, machine, model, 2_000_000_000)
                        .unwrap_or_else(|e| {
                            panic!(
                                "replay: {} on {} under {model:?}: {e}",
                                bench.name(),
                                machine.name
                            )
                        });
                assert_eq!(
                    reference,
                    replayed,
                    "replay diverged: {} ({}) on {} under {:?}",
                    bench.name(),
                    variant_for(machine).name(),
                    machine.name,
                    model
                );
                assert_eq!(
                    reference,
                    batched[bi],
                    "batched replay diverged: {} ({}) on {} under {:?}",
                    bench.name(),
                    variant_for(machine).name(),
                    machine.name,
                    model
                );
                if model == MemoryModel::Perfect {
                    assert_eq!(
                        recorded_stats,
                        reference,
                        "recording must not perturb timing: {} on {}",
                        bench.name(),
                        machine.name
                    );
                }
                compared += 1;
            }
        }
    }
    // 10 configurations x 6 benchmarks x 2 memory models, each compared
    // across all four engines.
    assert_eq!(compared, 120);
}

/// The cycle-attribution contract, on the same 120-case matrix: for every
/// preset x kernel x memory model and for all three profiled engines
/// (lowered, serial replay, batched replay), the per-cause attributed
/// cycles sum *exactly* to the `RunStats` totals (in total and per region,
/// via `Profile::check_against`), enabling profiling never changes
/// `RunStats`, and all three engines derive the *same* profile.
#[test]
fn profiler_attribution_contract_on_all_presets() {
    let configs = all_configs();
    let mut checked = 0usize;
    for machine in &configs {
        for bench in Benchmark::ALL {
            let prepared = prepare(bench, machine)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name(), machine.name));
            let statics = prepared.profile_statics(machine);
            // Record once under perfect memory, with profiling on.
            let (rec_stats, trace, rec_profile) = {
                let mut sim = Simulator::new(
                    machine,
                    SimOptions {
                        memory_model: MemoryModel::Perfect,
                        mem_size: prepared.build.mem_size.max(1 << 20),
                        max_cycles: 2_000_000_000,
                    },
                );
                for (addr, bytes) in &prepared.build.init {
                    sim.mem.write_bytes(*addr, bytes);
                }
                sim.run_lowered_recording_profiled(&prepared.lowered, &statics)
                    .expect("profiled recording run")
            };
            rec_profile
                .check_against(&rec_stats)
                .unwrap_or_else(|e| panic!("recording: {} on {}: {e}", bench.name(), machine.name));
            let analysis = vmv::sim::ReplayAnalysis::build(&prepared.lowered);
            let mut variants = vec![
                vmv::sim::VariantState::new(
                    &analysis,
                    machine,
                    MemoryModel::Perfect,
                    2_000_000_000,
                ),
                vmv::sim::VariantState::new(
                    &analysis,
                    machine,
                    MemoryModel::Realistic,
                    2_000_000_000,
                ),
            ];
            let (batch_stats, batch_profiles) =
                vmv::sim::replay_batch_profiled(&trace, &analysis, &mut variants, &statics)
                    .unwrap_or_else(|e| {
                        panic!("batch profiled: {} on {}: {e}", bench.name(), machine.name)
                    });
            for (bi, model) in [MemoryModel::Perfect, MemoryModel::Realistic]
                .into_iter()
                .enumerate()
            {
                let ctx = || {
                    format!(
                        "{} ({}) on {} under {:?}",
                        bench.name(),
                        variant_for(machine).name(),
                        machine.name,
                        model
                    )
                };
                let unprofiled = run_with(&prepared, machine, model, true);

                // Lowered engine, profiled.
                let (lp_stats, lp_profile) = {
                    let mut sim = Simulator::new(
                        machine,
                        SimOptions {
                            memory_model: model,
                            mem_size: prepared.build.mem_size.max(1 << 20),
                            max_cycles: 2_000_000_000,
                        },
                    );
                    for (addr, bytes) in &prepared.build.init {
                        sim.mem.write_bytes(*addr, bytes);
                    }
                    sim.run_lowered_profiled(&prepared.lowered, &statics)
                        .expect("profiled lowered run")
                };
                assert_eq!(
                    lp_stats,
                    unprofiled,
                    "profiling changed RunStats: {}",
                    ctx()
                );
                lp_profile
                    .check_against(&lp_stats)
                    .unwrap_or_else(|e| panic!("lowered attribution: {}: {e}", ctx()));

                // Serial replay, profiled.
                let (rp_stats, rp_profile) = vmv::sim::replay_profiled(
                    &prepared.lowered,
                    &trace,
                    machine,
                    model,
                    2_000_000_000,
                    &statics,
                )
                .unwrap_or_else(|e| panic!("profiled replay: {}: {e}", ctx()));
                assert_eq!(
                    rp_stats,
                    unprofiled,
                    "profiled replay changed RunStats: {}",
                    ctx()
                );
                rp_profile
                    .check_against(&rp_stats)
                    .unwrap_or_else(|e| panic!("replay attribution: {}: {e}", ctx()));

                // Batched replay, profiled.
                assert_eq!(
                    batch_stats[bi],
                    unprofiled,
                    "profiled batch changed RunStats: {}",
                    ctx()
                );
                batch_profiles[bi]
                    .check_against(&batch_stats[bi])
                    .unwrap_or_else(|e| panic!("batch attribution: {}: {e}", ctx()));

                // All three engines attribute identically, event for event.
                assert_eq!(
                    lp_profile,
                    rp_profile,
                    "lowered vs replay profile: {}",
                    ctx()
                );
                assert_eq!(
                    rp_profile,
                    batch_profiles[bi],
                    "replay vs batch profile: {}",
                    ctx()
                );
                if model == MemoryModel::Perfect {
                    assert_eq!(
                        lp_profile,
                        rec_profile,
                        "recording+profiling diverged: {}",
                        ctx()
                    );
                }
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 120);
}

#[test]
fn lowered_engine_matches_reference_functionally() {
    // Beyond timing: the memory image after a run must agree, so the
    // lowered execution path computes identical values.
    let machine = vmv::machine::presets::vector2(4);
    for bench in [Benchmark::GsmDec, Benchmark::JpegEnc] {
        let prepared = prepare(bench, &machine).unwrap();
        let mut checks = Vec::new();
        for lowered in [false, true] {
            let mut sim = Simulator::new(
                &machine,
                SimOptions {
                    memory_model: MemoryModel::Realistic,
                    mem_size: prepared.build.mem_size.max(1 << 20),
                    max_cycles: 2_000_000_000,
                },
            );
            for (addr, bytes) in &prepared.build.init {
                sim.mem.write_bytes(*addr, bytes);
            }
            if lowered {
                sim.run_lowered(&prepared.lowered).unwrap();
            } else {
                sim.run_reference(&prepared.compiled.program).unwrap();
            }
            checks.push(
                prepared
                    .build
                    .failed_checks(|addr, len| sim.mem.read_u8_slice(addr, len)),
            );
        }
        assert!(checks[0].is_empty(), "{}: {:?}", bench.name(), checks[0]);
        assert!(checks[1].is_empty(), "{}: {:?}", bench.name(), checks[1]);
    }
}

#[test]
fn lowering_errors_surface_before_execution() {
    use vmv::isa::{Op, Opcode, Reg, RegionId};
    use vmv::sched::{lower, LowerError, ScheduledBlock, ScheduledProgram};

    let machine = vmv::machine::presets::vliw(2);
    let block = |ops: Vec<Op>| ScheduledProgram {
        name: "bad".into(),
        blocks: vec![ScheduledBlock {
            label: "entry".into(),
            region: RegionId::SCALAR,
            bundles: vec![ops],
        }],
        regions: vec![],
    };

    // A branch to a missing label is a lowering error (and `Simulator::run`
    // reports it as the familiar UnknownLabel before any cycle executes).
    let bogus = block(vec![Op::new(Opcode::Jump).with_target("nowhere")]);
    assert!(matches!(
        lower(&bogus, &machine),
        Err(LowerError::UnknownLabel { .. })
    ));
    let mut sim = Simulator::with_model(&machine, MemoryModel::Perfect);
    assert!(matches!(
        sim.run(&bogus),
        Err(vmv::sim::SimError::UnknownLabel(_))
    ));

    // A register beyond the machine's register file is caught at lowering
    // time instead of indexing out of bounds mid-run.
    let out_of_range = block(vec![Op::new(Opcode::MovI)
        .with_dst(Reg::int(machine.regs.int + 1))
        .with_imm(7)]);
    assert!(matches!(
        lower(&out_of_range, &machine),
        Err(LowerError::SlotOutOfRange { .. })
    ));
    assert!(matches!(
        sim.run(&out_of_range),
        Err(vmv::sim::SimError::Lower(_))
    ));
}
