//! Workspace-level determinism guarantees: the experiment driver and the
//! sweep executor must produce byte-identical, identically-ordered results
//! no matter how many worker threads run the matrix.

use vector_usimd_vliw as vmv;
use vmv::core::Suite;
use vmv::kernels::Benchmark;
use vmv::machine::presets;
use vmv::mem::MemoryModel;

/// Reduced Table 2 matrix at 1 and N worker threads: the outcome *order*
/// (benchmark-major, then Table 2 machine index) and every statistic must
/// match exactly.
#[test]
fn suite_run_is_deterministic_across_thread_counts() {
    // Deliberately ordered so that name-ordering would differ from machine
    // indexing ("8w VLIW" sorts before "2w +uSIMD" by neither criterion).
    let machines = vec![presets::usimd(2), presets::vliw(8), presets::vector2(2)];
    let one = Suite::run_with_threads(&machines, MemoryModel::Perfect, 1).unwrap();
    let many = Suite::run_with_threads(&machines, MemoryModel::Perfect, 4).unwrap();

    assert_eq!(one.outcomes.len(), 3 * Benchmark::ALL.len());
    assert_eq!(one.outcomes.len(), many.outcomes.len());
    for (a, b) in one.outcomes.iter().zip(&many.outcomes) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.stats.cycles(), b.stats.cycles());
        assert_eq!(a.stats.total().operations, b.stats.total().operations);
        assert_eq!(a.check_failures, b.check_failures);
    }

    // Ordering contract: benchmark-major, machines in input (Table 2) order.
    let expected: Vec<(Benchmark, String)> = Benchmark::ALL
        .iter()
        .flat_map(|&bench| machines.iter().map(move |m| (bench, m.name.clone())))
        .collect();
    let actual: Vec<(Benchmark, String)> = one
        .outcomes
        .iter()
        .map(|o| (o.benchmark, o.config.clone()))
        .collect();
    assert_eq!(actual, expected);
}

/// The same outcomes must come out of the suite regardless of the memory
/// model plumbing — a smoke check that the deterministic ordering also
/// holds under realistic memory where run times differ wildly per job.
#[test]
fn realistic_suite_ordering_matches_perfect_suite_ordering() {
    let machines = vec![presets::vliw(2), presets::vector1(2)];
    let perfect = Suite::run_with_threads(&machines, MemoryModel::Perfect, 3).unwrap();
    let realistic = Suite::run_with_threads(&machines, MemoryModel::Realistic, 3).unwrap();
    let order = |s: &Suite| {
        s.outcomes
            .iter()
            .map(|o| (o.benchmark, o.config.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(order(&perfect), order(&realistic));
}
