//! Seeded mutation harness for the static verifier: prove that every
//! fault class the verifier claims to cover is actually *rejected*.
//!
//! A hand-built, provably legal schedule is mutated one fault at a time —
//! co-bundled write→read, an operation after the terminator, a consumer
//! placed inside its producer's latency shadow, oversubscribed issue
//! width / unit pools / cache ports, duplicate same-bundle writes,
//! dangling branch labels, doctored lowered metadata, and a replay
//! analysis that drops a must-track slot — and the harness asserts 100%
//! rejection with the expected diagnostic class, plus golden-pinned
//! rendering for one representative of each class.

use vector_usimd_vliw::isa::{BrCond, MemWidth, Op, Opcode, Reg, RegionId, RegionInfo, Sign};
use vector_usimd_vliw::kernels::Benchmark;
use vector_usimd_vliw::machine::{presets, MachineConfig};
use vector_usimd_vliw::sched::{ScheduledBlock, ScheduledProgram};
use vector_usimd_vliw::verify::{
    has_errors, must_track, verify_compiled, verify_lowered, verify_replay_subset, verify_schedule,
    Check, Diagnostic, Severity,
};

fn movi(dst: u32, imm: i64) -> Op {
    Op::new(Opcode::MovI).with_dst(Reg::int(dst)).with_imm(imm)
}

fn imul(dst: u32, a: u32, b: u32) -> Op {
    Op::new(Opcode::IMul)
        .with_dst(Reg::int(dst))
        .with_srcs(&[Reg::int(a), Reg::int(b)])
}

fn iadd(dst: u32, a: u32, b: u32) -> Op {
    Op::new(Opcode::IAdd)
        .with_dst(Reg::int(dst))
        .with_srcs(&[Reg::int(a), Reg::int(b)])
}

fn load(dst: u32, addr: u32) -> Op {
    Op::new(Opcode::Load(MemWidth::B4, Sign::Signed))
        .with_dst(Reg::int(dst))
        .with_srcs(&[Reg::int(addr)])
        .with_imm(0)
}

fn store(addr: u32, value: u32) -> Op {
    Op::new(Opcode::Store(MemWidth::B4))
        .with_srcs(&[Reg::int(addr), Reg::int(value)])
        .with_imm(0)
}

/// A small schedule that is legal on the 2-issue scalar VLIW preset
/// (`int_mul` latency 3, `int_alu` latency 1, 2 integer units, 1 L1 port):
///
/// ```text
/// bundle 0: movi r0 #1 | movi r1 #2
/// bundle 1: imul r2 r0 r0
/// bundle 2: (empty)
/// bundle 3: (empty)
/// bundle 4: iadd r3 r2 r1        // 3 cycles after its imul producer
/// bundle 5: halt
/// ```
fn baseline() -> (ScheduledProgram, MachineConfig) {
    let machine = presets::vliw(2);
    let program = ScheduledProgram {
        name: "mutation-baseline".to_string(),
        blocks: vec![ScheduledBlock {
            label: "entry".to_string(),
            region: RegionId::SCALAR,
            bundles: vec![
                vec![movi(0, 1), movi(1, 2)],
                vec![imul(2, 0, 0)],
                vec![],
                vec![],
                vec![iadd(3, 2, 1)],
                vec![Op::new(Opcode::Halt)],
            ],
        }],
        regions: vec![RegionInfo {
            id: RegionId::SCALAR,
            name: "scalar".to_string(),
        }],
    };
    (program, machine)
}

fn classes(diags: &[Diagnostic]) -> Vec<Check> {
    diags.iter().map(|d| d.check).collect()
}

#[test]
fn baseline_is_certified_clean() {
    let (program, machine) = baseline();
    let diags = verify_schedule(&program, &machine);
    assert!(diags.is_empty(), "baseline must verify clean: {diags:?}");
}

/// Every seeded fault must be rejected with (at least) its own class, and
/// everything the verifier says about a faulty schedule must be an error.
#[test]
fn every_fault_class_is_rejected() {
    type Mutation = (&'static str, fn(&mut ScheduledProgram), Check);
    let mutations: [Mutation; 9] = [
        (
            "co-bundled RAW (consumer beside producer)",
            |p| {
                let op = p.blocks[0].bundles[4].remove(0);
                p.blocks[0].bundles[1].push(op);
            },
            Check::Hazard,
        ),
        (
            "operation placed after the terminator",
            |p| {
                p.blocks[0].bundles.swap(4, 5);
            },
            Check::Hazard,
        ),
        (
            "co-bundled stores (memory order lost)",
            |p| {
                p.blocks[0].bundles[2] = vec![store(0, 1), store(1, 0)];
            },
            Check::Hazard,
        ),
        (
            "consumer inside the producer's latency shadow",
            |p| {
                let op = p.blocks[0].bundles[4].remove(0);
                p.blocks[0].bundles[2].push(op);
            },
            Check::Latency,
        ),
        (
            "issue width exceeded",
            |p| {
                p.blocks[0].bundles[0].push(movi(4, 3));
            },
            Check::Resource,
        ),
        (
            "L1 ports oversubscribed",
            |p| {
                p.blocks[0].bundles[2] = vec![load(4, 0), load(5, 0)];
            },
            Check::Resource,
        ),
        (
            "duplicate same-bundle write",
            |p| {
                p.blocks[0].bundles[0] = vec![movi(0, 1), movi(0, 2)];
            },
            Check::DuplicateWrite,
        ),
        (
            "branch to an unknown label",
            |p| {
                p.blocks[0].bundles[5] = vec![Op::new(Opcode::Br(BrCond::Ne))
                    .with_srcs(&[Reg::int(3)])
                    .with_target("nowhere")];
            },
            Check::Label,
        ),
        (
            "branch with no target at all",
            |p| {
                p.blocks[0].bundles[5] =
                    vec![Op::new(Opcode::Br(BrCond::Ne)).with_srcs(&[Reg::int(3)])];
            },
            Check::Label,
        ),
    ];

    for (name, mutate, expected) in mutations {
        let (mut program, machine) = baseline();
        mutate(&mut program);
        let diags = verify_schedule(&program, &machine);
        assert!(
            has_errors(&diags),
            "mutation '{name}' must be rejected, got no errors"
        );
        assert!(
            diags.iter().any(|d| d.check == expected),
            "mutation '{name}' must produce a {expected:?} diagnostic, got {:?}",
            classes(&diags)
        );
        assert!(
            diags.iter().all(|d| d.severity == Severity::Error),
            "mutation '{name}' produced non-error diagnostics: {diags:?}"
        );
    }
}

type GoldenCase = (fn(&mut ScheduledProgram), &'static str);

/// Golden renderings: one representative diagnostic per fault class, so
/// the exact operator-facing text is pinned.
#[test]
fn diagnostics_render_golden() {
    let cases: [GoldenCase; 6] = [
        (
            |p| {
                let op = p.blocks[0].bundles[4].remove(0);
                p.blocks[0].bundles[1].push(op);
            },
            "error[hazard] block 'entry', bundle 1: 'iadd r3 r2 r1' reads r2 \
             in the same bundle its producer 'imul r2 r0 r0' issues in",
        ),
        (
            |p| p.blocks[0].bundles.swap(4, 5),
            "error[hazard] block 'entry', bundle 5: 'iadd r3 r2 r1' is placed \
             after the block terminator 'halt' (bundle 4)",
        ),
        (
            |p| {
                let op = p.blocks[0].bundles[4].remove(0);
                p.blocks[0].bundles[2].push(op);
            },
            "error[latency] block 'entry', bundle 2: 'iadd r3 r2 r1' issues 1 \
             cycle(s) after its producer 'imul r2 r0 r0' (bundle 1); the raw \
             dependence on r2 requires 3",
        ),
        (
            |p| p.blocks[0].bundles[0].push(movi(4, 3)),
            "error[resource] block 'entry', bundle 0: issue width exceeded: \
             3 operations in one bundle, width is 2",
        ),
        (
            |p| p.blocks[0].bundles[0] = vec![movi(0, 1), movi(0, 2)],
            "error[duplicate-write] block 'entry', bundle 0: duplicate write \
             to r0: 'movi r0 #1' and 'movi r0 #2' share the bundle",
        ),
        (
            |p| {
                p.blocks[0].bundles[5] = vec![Op::new(Opcode::Br(BrCond::Ne))
                    .with_srcs(&[Reg::int(3)])
                    .with_target("nowhere")]
            },
            "error[label] block 'entry', bundle 5: branch 'br_ne r3 ->nowhere' \
             targets unknown label 'nowhere'",
        ),
    ];
    for (mutate, expected) in cases {
        let (mut program, machine) = baseline();
        mutate(&mut program);
        let rendered: Vec<String> = verify_schedule(&program, &machine)
            .iter()
            .map(|d| d.to_string())
            .collect();
        assert!(
            rendered.iter().any(|r| r == expected),
            "expected golden diagnostic\n  {expected}\ngot\n  {rendered:#?}"
        );
    }
}

/// Lowered-level mutations: doctored packed metadata, a mis-pointed branch
/// target, and a block that falls off the end of the program.
#[test]
fn lowered_mutations_are_rejected() {
    let machine = presets::vliw(2);
    let clean = vector_usimd_vliw::core::prepare(Benchmark::GsmDec, &machine).unwrap();
    assert!(
        verify_lowered(&clean.lowered, &machine).is_empty(),
        "prepared program must verify clean"
    );

    // Shrink one op's flow latency: the replay engines would release
    // consumers early.  The verifier re-derives it from the machine table.
    let mut doctored = clean.lowered.clone();
    let victim = doctored
        .ops
        .iter()
        .position(|op| op.flow > 1)
        .expect("some op with flow > 1");
    doctored.ops[victim].flow -= 1;
    let diags = verify_lowered(&doctored, &machine);
    assert!(
        diags
            .iter()
            .any(|d| d.check == Check::Latency && d.message.contains("flow latency")),
        "{diags:?}"
    );

    // Mis-point a branch: target index past the block list.
    let mut doctored = clean.lowered.clone();
    let branch = doctored
        .ops
        .iter()
        .position(|op| op.opcode.is_branch())
        .expect("GSM_DEC has loops");
    doctored.ops[branch].target = 9999;
    let diags = verify_lowered(&doctored, &machine);
    assert!(
        diags
            .iter()
            .any(|d| d.check == Check::Label && d.message.contains("out of range")),
        "{diags:?}"
    );

    // A program whose last block has no halt falls off the end.
    let no_halt = ScheduledProgram {
        name: "no-halt".to_string(),
        blocks: vec![ScheduledBlock {
            label: "entry".to_string(),
            region: RegionId::SCALAR,
            bundles: vec![vec![movi(0, 1)]],
        }],
        regions: vec![RegionInfo {
            id: RegionId::SCALAR,
            name: "scalar".to_string(),
        }],
    };
    let lowered = vector_usimd_vliw::sched::lower(&no_halt, &machine).unwrap();
    let diags = verify_lowered(&lowered, &machine);
    assert!(
        diags.iter().any(|d| d.check == Check::Label),
        "missing halt must be a label-class error: {diags:?}"
    );
    assert!(has_errors(&diags));
}

/// The replay subset proof: the engine's tracked set covers every
/// must-track slot on a real program, and a doctored all-false tracked
/// set (an analysis that "optimizes away" the whole scoreboard) is
/// rejected with a replay-class diagnostic naming a register.
#[test]
fn replay_subset_holds_and_mutations_are_rejected() {
    let machine = presets::vliw(2);
    let prepared = vector_usimd_vliw::core::prepare(Benchmark::GsmDec, &machine).unwrap();
    let analysis = vector_usimd_vliw::sim::ReplayAnalysis::build(&prepared.lowered);
    assert!(
        verify_replay_subset(&prepared.lowered, analysis.tracked_slots()).is_empty(),
        "the engine's tracked set must cover every must-track slot"
    );
    let must = must_track(&prepared.lowered);
    assert!(
        must.iter().any(|&m| m),
        "GSM_DEC has loads whose destinations are read"
    );

    let none = vec![false; prepared.lowered.total_slots()];
    let diags = verify_replay_subset(&prepared.lowered, &none);
    assert!(has_errors(&diags));
    assert!(diags.iter().all(|d| d.check == Check::Replay), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("drops r")),
        "diagnostic should name the dropped register: {diags:?}"
    );

    // A tracked set of the wrong size is its own structural error.
    let short = vec![true; 1];
    let diags = verify_replay_subset(&prepared.lowered, &short);
    assert!(has_errors(&diags));
    assert!(diags[0].message.contains("covers 1 slots"), "{}", diags[0]);
}

/// The acceptance sweep: every (preset machine, benchmark) schedule in the
/// matrix must certify with zero diagnostics — the same contract the
/// `verify --all` CI step enforces on the release build.
#[test]
fn full_matrix_certifies_clean() {
    for machine in vector_usimd_vliw::machine::all_configs() {
        for &benchmark in Benchmark::ALL.iter() {
            let prepared = vector_usimd_vliw::core::prepare(benchmark, &machine)
                .unwrap_or_else(|e| panic!("{} / {}: {e}", machine.name, benchmark.name()));
            let diags = verify_compiled(&prepared.compiled.program, &prepared.lowered, &machine);
            assert!(
                diags.is_empty(),
                "{} / {} failed certification: {diags:?}",
                machine.name,
                benchmark.name()
            );
        }
    }
}
