//! Trace-replay behaviour beyond the three-engine differential: replay is
//! deterministic, the adaptive `simulate` path agrees with fresh execution
//! on a shared `Prepared`, and malformed traces are rejected with typed
//! errors instead of garbage statistics.

use vector_usimd_vliw as vmv;
use vmv::core::{prepare, simulate, simulate_fresh};
use vmv::kernels::Benchmark;
use vmv::machine::presets;
use vmv::mem::MemoryModel;
use vmv::sim::{replay, ReplayError, SimOptions, Simulator, Trace};

const MAX_CYCLES: u64 = 2_000_000_000;

fn record(
    bench: Benchmark,
    machine: &vmv::machine::MachineConfig,
    model: MemoryModel,
) -> (vmv::core::Prepared, vmv::sim::RunStats, Trace) {
    let prepared = prepare(bench, machine).expect("prepares");
    let mut sim = Simulator::new(
        machine,
        SimOptions {
            memory_model: model,
            mem_size: prepared.build.mem_size.max(1 << 20),
            max_cycles: MAX_CYCLES,
        },
    );
    for (addr, bytes) in &prepared.build.init {
        sim.mem.write_bytes(*addr, bytes);
    }
    let (stats, trace) = sim
        .run_lowered_recording(&prepared.lowered)
        .expect("recording run");
    (prepared, stats, trace)
}

#[test]
fn replaying_the_same_trace_twice_is_deterministic() {
    let machine = presets::vector2(4);
    let (prepared, stats, trace) = record(Benchmark::GsmDec, &machine, MemoryModel::Realistic);
    let a = replay(
        &prepared.lowered,
        &trace,
        &machine,
        MemoryModel::Realistic,
        MAX_CYCLES,
    )
    .expect("first replay");
    let b = replay(
        &prepared.lowered,
        &trace,
        &machine,
        MemoryModel::Realistic,
        MAX_CYCLES,
    )
    .expect("second replay");
    assert_eq!(a, b, "replay must be a pure function of (program, trace)");
    assert_eq!(a, stats, "and must reproduce the recorded run exactly");
}

#[test]
fn adaptive_simulate_matches_fresh_execution_across_models() {
    // The first `simulate` on a shared `Prepared` executes and records;
    // every later call replays.  Both strategies must agree bit-for-bit,
    // for every memory model, on the same entry.
    let machine = presets::vector2(2);
    let prepared = std::sync::Arc::new(prepare(Benchmark::JpegEnc, &machine).unwrap());
    assert!(!prepared.has_trace());
    for model in [MemoryModel::Perfect, MemoryModel::Realistic] {
        let adaptive = simulate(&prepared, &machine, model).unwrap();
        let fresh = simulate_fresh(&prepared, &machine, model).unwrap();
        assert_eq!(adaptive.stats, fresh.stats, "{model:?}");
        assert_eq!(adaptive.check_failures, fresh.check_failures);
    }
    assert!(prepared.has_trace(), "the first simulate recorded a trace");
}

#[test]
fn truncated_access_stream_is_rejected() {
    let machine = presets::vector2(2);
    let (prepared, _, trace) = record(Benchmark::GsmDec, &machine, MemoryModel::Perfect);
    assert!(!trace.accesses.is_empty());
    let mut cut = trace.clone();
    cut.accesses.truncate(trace.accesses.len() / 2);
    match replay(
        &prepared.lowered,
        &cut,
        &machine,
        MemoryModel::Perfect,
        MAX_CYCLES,
    ) {
        Err(ReplayError::TruncatedAccesses { consumed }) => {
            assert_eq!(consumed, cut.accesses.len())
        }
        other => panic!("expected TruncatedAccesses, got {other:?}"),
    }
}

#[test]
fn truncated_vl_stream_is_rejected() {
    let machine = presets::vector2(2);
    let (prepared, _, trace) = record(Benchmark::GsmEnc, &machine, MemoryModel::Perfect);
    assert!(
        !trace.vl_sets.is_empty(),
        "a strip-mined vector kernel sets VL at least once"
    );
    let mut cut = trace.clone();
    cut.vl_sets.clear();
    match replay(
        &prepared.lowered,
        &cut,
        &machine,
        MemoryModel::Perfect,
        MAX_CYCLES,
    ) {
        Err(ReplayError::TruncatedVlSets { consumed }) => assert_eq!(consumed, 0),
        other => panic!("expected TruncatedVlSets, got {other:?}"),
    }
}

#[test]
fn out_of_range_block_and_trailing_events_are_rejected() {
    let machine = presets::vector2(2);
    let (prepared, _, trace) = record(Benchmark::GsmDec, &machine, MemoryModel::Perfect);

    let mut bogus = trace.clone();
    bogus.blocks[0] = prepared.lowered.blocks.len() as u32 + 7;
    assert!(matches!(
        replay(
            &prepared.lowered,
            &bogus,
            &machine,
            MemoryModel::Perfect,
            MAX_CYCLES
        ),
        Err(ReplayError::BlockOutOfRange { step: 0, .. })
    ));

    let mut padded = trace.clone();
    padded.accesses.push(*padded.accesses.last().unwrap());
    assert!(matches!(
        replay(
            &prepared.lowered,
            &padded,
            &machine,
            MemoryModel::Perfect,
            MAX_CYCLES
        ),
        Err(ReplayError::TrailingEvents { accesses: 1, .. })
    ));
}

#[test]
fn empty_trace_is_rejected_as_missing_halt() {
    let machine = presets::vector2(2);
    let (prepared, _, _) = record(Benchmark::GsmDec, &machine, MemoryModel::Perfect);
    let empty = Trace::default();
    assert!(matches!(
        replay(
            &prepared.lowered,
            &empty,
            &machine,
            MemoryModel::Perfect,
            MAX_CYCLES
        ),
        Err(ReplayError::MissingHalt)
    ));
}

#[test]
fn replay_errors_render_as_text() {
    // The sweep surfaces these through `e.to_string()` — make sure every
    // variant has a stable human-readable rendering.
    let errors: Vec<ReplayError> = vec![
        ReplayError::BlockOutOfRange { step: 3, block: 9 },
        ReplayError::TruncatedAccesses { consumed: 12 },
        ReplayError::TruncatedVlSets { consumed: 0 },
        ReplayError::MissingHalt,
        ReplayError::BlocksAfterHalt { step: 5 },
        ReplayError::TrailingEvents {
            accesses: 2,
            vl_sets: 1,
        },
        ReplayError::CycleLimit(1_000_000),
    ];
    for e in errors {
        assert!(!e.to_string().is_empty(), "{e:?}");
    }
}
