//! Trace-replay behaviour beyond the three-engine differential: replay is
//! deterministic, the adaptive `simulate` path agrees with fresh execution
//! on a shared `Prepared`, and malformed traces are rejected with typed
//! errors instead of garbage statistics.

use vector_usimd_vliw as vmv;
use vmv::core::{prepare, simulate, simulate_fresh};
use vmv::kernels::rng::SmallRng;
use vmv::kernels::Benchmark;
use vmv::machine::{presets, MachineConfig};
use vmv::mem::MemoryModel;
use vmv::sim::{
    replay, replay_batch, ReplayAnalysis, ReplayError, SimOptions, Simulator, Trace, VariantState,
};

const MAX_CYCLES: u64 = 2_000_000_000;

fn record(
    bench: Benchmark,
    machine: &vmv::machine::MachineConfig,
    model: MemoryModel,
) -> (vmv::core::Prepared, vmv::sim::RunStats, Trace) {
    let prepared = prepare(bench, machine).expect("prepares");
    let mut sim = Simulator::new(
        machine,
        SimOptions {
            memory_model: model,
            mem_size: prepared.build.mem_size.max(1 << 20),
            max_cycles: MAX_CYCLES,
        },
    );
    for (addr, bytes) in &prepared.build.init {
        sim.mem.write_bytes(*addr, bytes);
    }
    let (stats, trace) = sim
        .run_lowered_recording(&prepared.lowered)
        .expect("recording run");
    (prepared, stats, trace)
}

#[test]
fn replaying_the_same_trace_twice_is_deterministic() {
    let machine = presets::vector2(4);
    let (prepared, stats, trace) = record(Benchmark::GsmDec, &machine, MemoryModel::Realistic);
    let a = replay(
        &prepared.lowered,
        &trace,
        &machine,
        MemoryModel::Realistic,
        MAX_CYCLES,
    )
    .expect("first replay");
    let b = replay(
        &prepared.lowered,
        &trace,
        &machine,
        MemoryModel::Realistic,
        MAX_CYCLES,
    )
    .expect("second replay");
    assert_eq!(a, b, "replay must be a pure function of (program, trace)");
    assert_eq!(a, stats, "and must reproduce the recorded run exactly");
}

#[test]
fn adaptive_simulate_matches_fresh_execution_across_models() {
    // The first `simulate` on a shared `Prepared` executes and records;
    // every later call replays.  Both strategies must agree bit-for-bit,
    // for every memory model, on the same entry.
    let machine = presets::vector2(2);
    let prepared = std::sync::Arc::new(prepare(Benchmark::JpegEnc, &machine).unwrap());
    assert!(!prepared.has_trace());
    for model in [MemoryModel::Perfect, MemoryModel::Realistic] {
        let adaptive = simulate(&prepared, &machine, model).unwrap();
        let fresh = simulate_fresh(&prepared, &machine, model).unwrap();
        assert_eq!(adaptive.stats, fresh.stats, "{model:?}");
        assert_eq!(adaptive.check_failures, fresh.check_failures);
    }
    assert!(prepared.has_trace(), "the first simulate recorded a trace");
}

#[test]
fn truncated_access_stream_is_rejected() {
    let machine = presets::vector2(2);
    let (prepared, _, trace) = record(Benchmark::GsmDec, &machine, MemoryModel::Perfect);
    assert!(!trace.accesses.is_empty());
    let mut cut = trace.clone();
    cut.accesses.truncate(trace.accesses.len() / 2);
    match replay(
        &prepared.lowered,
        &cut,
        &machine,
        MemoryModel::Perfect,
        MAX_CYCLES,
    ) {
        Err(ReplayError::TruncatedAccesses { consumed }) => {
            assert_eq!(consumed, cut.accesses.len())
        }
        other => panic!("expected TruncatedAccesses, got {other:?}"),
    }
}

#[test]
fn truncated_vl_stream_is_rejected() {
    let machine = presets::vector2(2);
    let (prepared, _, trace) = record(Benchmark::GsmEnc, &machine, MemoryModel::Perfect);
    assert!(
        !trace.vl_sets.is_empty(),
        "a strip-mined vector kernel sets VL at least once"
    );
    let mut cut = trace.clone();
    cut.vl_sets.clear();
    match replay(
        &prepared.lowered,
        &cut,
        &machine,
        MemoryModel::Perfect,
        MAX_CYCLES,
    ) {
        Err(ReplayError::TruncatedVlSets { consumed }) => assert_eq!(consumed, 0),
        other => panic!("expected TruncatedVlSets, got {other:?}"),
    }
}

#[test]
fn out_of_range_block_and_trailing_events_are_rejected() {
    let machine = presets::vector2(2);
    let (prepared, _, trace) = record(Benchmark::GsmDec, &machine, MemoryModel::Perfect);

    let mut bogus = trace.clone();
    bogus.blocks[0] = prepared.lowered.blocks.len() as u32 + 7;
    assert!(matches!(
        replay(
            &prepared.lowered,
            &bogus,
            &machine,
            MemoryModel::Perfect,
            MAX_CYCLES
        ),
        Err(ReplayError::BlockOutOfRange { step: 0, .. })
    ));

    let mut padded = trace.clone();
    padded.accesses.push(*padded.accesses.last().unwrap());
    assert!(matches!(
        replay(
            &prepared.lowered,
            &padded,
            &machine,
            MemoryModel::Perfect,
            MAX_CYCLES
        ),
        Err(ReplayError::TrailingEvents { accesses: 1, .. })
    ));
}

#[test]
fn empty_trace_is_rejected_as_missing_halt() {
    let machine = presets::vector2(2);
    let (prepared, _, _) = record(Benchmark::GsmDec, &machine, MemoryModel::Perfect);
    let empty = Trace::default();
    assert!(matches!(
        replay(
            &prepared.lowered,
            &empty,
            &machine,
            MemoryModel::Perfect,
            MAX_CYCLES
        ),
        Err(ReplayError::MissingHalt)
    ));
}

#[test]
fn replay_errors_render_as_text() {
    // The sweep surfaces these through `e.to_string()` — make sure every
    // variant has a stable human-readable rendering.
    let errors: Vec<ReplayError> = vec![
        ReplayError::BlockOutOfRange { step: 3, block: 9 },
        ReplayError::TruncatedAccesses { consumed: 12 },
        ReplayError::TruncatedVlSets { consumed: 0 },
        ReplayError::MissingHalt,
        ReplayError::BlocksAfterHalt { step: 5 },
        ReplayError::TrailingEvents {
            accesses: 2,
            vl_sets: 1,
        },
        ReplayError::VariantSlotMismatch {
            variant: 1,
            expected: 40,
            got: 64,
        },
        ReplayError::CycleLimit(1_000_000),
    ];
    for e in errors {
        assert!(!e.to_string().is_empty(), "{e:?}");
    }
}

/// A memory-parameter variant of `machine`: same schedule-relevant fields,
/// slower lower levels.  Tag-equivalent to the base machine, so a batch
/// containing both exercises the echo-priced follower path.
fn slow_memory(machine: &MachineConfig) -> MachineConfig {
    let mut m = machine.clone();
    m.memory.l3_latency += 15;
    m.memory.mem_latency *= 3;
    m
}

#[test]
fn batched_replay_is_bit_identical_to_serial_on_the_full_matrix() {
    // The tentpole contract: for every Table 2 preset and every kernel,
    // retiming one trace against K variants in a single fused walk must
    // produce exactly the RunStats that K serial replays produce.  The
    // variant set mixes both memory models and a latency-shifted machine
    // so the batch spans tag-equivalence classes (leaders) and pure
    // latency followers.
    let configs = vmv::machine::all_configs();
    assert_eq!(configs.len(), 10, "Table 2 has ten configurations");
    for machine in &configs {
        for bench in Benchmark::ALL {
            let (prepared, _, trace) = record(bench, machine, MemoryModel::Perfect);
            let analysis = ReplayAnalysis::build(&prepared.lowered);
            let slow = slow_memory(machine);
            let plan: Vec<(&MachineConfig, MemoryModel)> = vec![
                (machine, MemoryModel::Perfect),
                (machine, MemoryModel::Realistic),
                (&slow, MemoryModel::Realistic),
            ];
            let mut variants: Vec<VariantState> = plan
                .iter()
                .map(|(m, model)| VariantState::new(&analysis, m, *model, MAX_CYCLES))
                .collect();
            let batched = replay_batch(&trace, &analysis, &mut variants)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name(), machine.name));
            assert_eq!(batched.len(), plan.len());
            for ((m, model), got) in plan.iter().zip(&batched) {
                let serial = replay(&prepared.lowered, &trace, m, *model, MAX_CYCLES)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name(), machine.name));
                assert_eq!(
                    *got,
                    serial,
                    "batched replay diverged from serial: {} on {} under {:?} (mem_latency {})",
                    bench.name(),
                    machine.name,
                    model,
                    m.memory.mem_latency
                );
            }
        }
    }
}

#[test]
fn random_variant_subsets_match_serial_replay() {
    // Property test: any subset of memory variants, in any order (with
    // repeats), batch-replays to exactly what each variant gets from a
    // serial replay — including the degenerate batch of one.
    let machine = presets::vector2(4);
    let (prepared, _, trace) = record(Benchmark::GsmDec, &machine, MemoryModel::Perfect);
    let analysis = ReplayAnalysis::build(&prepared.lowered);

    // A pool of candidate variants: both models crossed with latency and
    // geometry perturbations (the geometry change forces extra
    // tag-equivalence classes inside a batch).
    let mut pool: Vec<(MachineConfig, MemoryModel)> = Vec::new();
    for model in [MemoryModel::Perfect, MemoryModel::Realistic] {
        for (l2_lat, mem_lat, l2_size_shift) in
            [(8, 100, 0), (8, 400, 0), (12, 100, 0), (8, 100, 1)]
        {
            let mut m = machine.clone();
            m.memory.l2_latency = l2_lat;
            m.memory.mem_latency = mem_lat;
            m.memory.l2_size >>= l2_size_shift;
            pool.push((m, model));
        }
    }

    // Serial-replay oracle per pool entry, computed once.
    let oracle: Vec<vmv::sim::RunStats> = pool
        .iter()
        .map(|(m, model)| replay(&prepared.lowered, &trace, m, *model, MAX_CYCLES).unwrap())
        .collect();

    let mut rng = SmallRng::seed_from_u64(0x5EED_BA7C);
    for round in 0..12 {
        // Round 0 pins the batch-of-one case; later rounds draw 1..=6
        // variants with replacement, in random order.
        let width = if round == 0 {
            1
        } else {
            rng.gen_range_i64(1, 6) as usize
        };
        let picks: Vec<usize> = (0..width)
            .map(|_| rng.gen_range_i64(0, pool.len() as i64 - 1) as usize)
            .collect();
        let mut variants: Vec<VariantState> = picks
            .iter()
            .map(|&i| VariantState::new(&analysis, &pool[i].0, pool[i].1, MAX_CYCLES))
            .collect();
        let batched = replay_batch(&trace, &analysis, &mut variants).unwrap();
        assert_eq!(batched.len(), picks.len());
        for (slot, &i) in picks.iter().enumerate() {
            assert_eq!(
                batched[slot], oracle[i],
                "round {round}: batch slot {slot} (pool entry {i}) diverged"
            );
        }
    }
}

#[test]
fn empty_batch_and_foreign_variants_are_rejected_cleanly() {
    let machine = presets::vector2(2);
    let (prepared, _, trace) = record(Benchmark::GsmDec, &machine, MemoryModel::Perfect);
    let analysis = ReplayAnalysis::build(&prepared.lowered);

    // A batch of zero variants is a no-op, not an error.
    assert_eq!(replay_batch(&trace, &analysis, &mut []).unwrap(), vec![]);

    // A variant stamped from a *different* program's analysis must be
    // rejected before the walk starts, naming the offending slot.
    let vliw = presets::vliw(2);
    let other = prepare(Benchmark::JpegEnc, &vliw).expect("prepares");
    let other_analysis = ReplayAnalysis::build(&other.lowered);
    assert_ne!(
        analysis.total_slots(),
        other_analysis.total_slots(),
        "test premise: the two programs use different slot universes"
    );
    let mut variants = vec![
        VariantState::new(&analysis, &machine, MemoryModel::Perfect, MAX_CYCLES),
        VariantState::new(&other_analysis, &vliw, MemoryModel::Perfect, MAX_CYCLES),
    ];
    match replay_batch(&trace, &analysis, &mut variants) {
        Err(ReplayError::VariantSlotMismatch {
            variant,
            expected,
            got,
        }) => {
            assert_eq!(variant, 1);
            assert_eq!(expected, analysis.total_slots());
            assert_eq!(got, other_analysis.total_slots());
        }
        other => panic!("expected VariantSlotMismatch, got {other:?}"),
    }
}
