//! Profiler determinism: the demo sweep run with `--profile` must
//! reproduce the committed overview/detail/Chrome-trace goldens byte for
//! byte, and turning the profiler on must never change `RunStats`.
//!
//! Regenerate after an intentional rendering change with
//! `UPDATE_GOLDENS=1 cargo test --test profile_golden`.

use std::path::{Path, PathBuf};

use vector_usimd_vliw as vmv;

use vmv::kernels::Benchmark;
use vmv::machine::all_configs;
use vmv::mem::MemoryModel;
use vmv::report::{chrome_trace, profile_detail_md, profile_overview_md};
use vmv::sweep::profiles::STALL_BASE;
use vmv::sweep::{load_all_profiles, run_sweep, ExecOptions, ProfileDoc, SpecFile};

/// Compare `actual` against the committed golden, or rewrite it when
/// `UPDATE_GOLDENS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}) — run with UPDATE_GOLDENS=1"));
    assert!(
        actual == expected,
        "{name} drifted from the committed golden — if the rendering change \
         is intentional, regenerate with `UPDATE_GOLDENS=1 cargo test --test \
         profile_golden`"
    );
}

/// Run the embedded demo spec in-process with profiling on, exactly as
/// `sweep --demo --profile DIR` does, and return the parsed documents.
fn demo_profiles(dir: &Path) -> Vec<ProfileDoc> {
    let spec = SpecFile::demo();
    let lowered = spec.lower().expect("demo spec lowers");
    let points = lowered.spec.expand().points;
    let mut opts = ExecOptions::for_spec(&lowered, 0);
    opts.profile_dir = Some(dir.to_path_buf());
    let report = run_sweep(&points, &opts, None).expect("sweep runs");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let docs = load_all_profiles(dir).expect("profiles load");
    assert_eq!(docs.len(), report.records.len(), "one document per run");
    docs
}

#[test]
fn demo_profiles_match_the_committed_goldens() {
    let dir = std::env::temp_dir().join(format!("vmv_profile_golden_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let docs = demo_profiles(&dir);
    std::fs::remove_dir_all(&dir).ok();

    // Every persisted document still satisfies the sum-exactly contract.
    for d in &docs {
        assert_eq!(d.causes.iter().sum::<u64>(), d.cycles, "run {}", d.meta.key);
        assert_eq!(
            d.causes[STALL_BASE..].iter().sum::<u64>(),
            d.stall_cycles,
            "run {}",
            d.meta.key
        );
    }

    check_golden(
        "demo_profile_overview.md",
        &profile_overview_md("demo", &docs),
    );
    // `load_all` sorts by key, so the first document is a stable pick.
    let first = &docs[0];
    check_golden("demo_profile_detail.md", &profile_detail_md(first));
    check_golden("demo_profile_trace.json", &chrome_trace(first));
}

#[test]
fn profiled_runs_return_bit_identical_stats() {
    // Seeded LCG over preset x kernel x memory picks: the profiled path
    // must be invisible in RunStats, and its attribution must sum exactly.
    let mut state: u64 = 0xDEAD_BEEF_CAFE_F00D;
    let mut next = move |m: usize| -> usize {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m
    };
    let configs = all_configs();
    let models = [MemoryModel::Perfect, MemoryModel::Realistic];
    for _ in 0..12 {
        let machine = &configs[next(configs.len())];
        let benchmark = Benchmark::ALL[next(Benchmark::ALL.len())];
        let model = models[next(models.len())];
        let prepared = vmv::core::prepare(benchmark, machine).expect("prepare");
        let plain = vmv::core::simulate(&prepared, machine, model).expect("simulate");
        let (profiled, profile) =
            vmv::core::simulate_profiled(&prepared, machine, model).expect("simulate profiled");
        assert_eq!(
            plain.stats, profiled.stats,
            "{}/{benchmark:?}/{model:?}: profiling changed RunStats",
            machine.name
        );
        profile
            .check_against(&profiled.stats)
            .unwrap_or_else(|e| panic!("{}/{benchmark:?}/{model:?}: {e}", machine.name));
    }
}
