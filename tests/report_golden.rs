//! End-to-end determinism of the reporting subsystem: the demo sweep,
//! rendered through `vmv-report`, must reproduce the committed golden
//! Markdown byte for byte — the same invariant CI checks through the
//! `sweep` and `report` binaries.

use vector_usimd_vliw as vmv;

use vmv::report::{compare, markdown, pareto_report, sensitivity, svg, LoadedStore, ResolvedStore};
use vmv::sweep::{run_sweep, ExecOptions, SpecFile};

/// Run the embedded demo spec in-process and return the store text exactly
/// as `sweep --demo` writes it: header line, then one record per line in
/// deterministic job order.
fn demo_store_text() -> String {
    let spec = SpecFile::demo();
    let lowered = spec.lower().expect("demo spec lowers");
    let points = lowered.spec.expand().points;
    let report = run_sweep(&points, &ExecOptions::for_spec(&lowered, 0), None).expect("sweep runs");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let mut text = format!("{}\n", spec.store_header().to_json().render());
    for r in &report.records {
        text.push_str(&r.to_json().render());
        text.push('\n');
    }
    text
}

#[test]
fn demo_reports_match_the_committed_goldens() {
    let loaded = LoadedStore::from_text(&demo_store_text());
    assert!(loaded.diagnostics.is_empty(), "{:?}", loaded.diagnostics);
    let resolved = ResolvedStore::resolve(&loaded).expect("demo store resolves");
    assert_eq!(resolved.unmatched, 0);
    assert_eq!(resolved.records.len(), 224, "112 points x GSM pair");

    // Pareto: byte-identical to the committed golden.
    let entries = pareto_report(&resolved.points, &resolved.records);
    let pareto = markdown::pareto_md("demo", &resolved.spec.fingerprint(), &entries);
    assert_eq!(
        pareto,
        include_str!("golden/demo_pareto.md"),
        "pareto report drifted from tests/golden/demo_pareto.md — if the \
         change is intentional, regenerate the golden with \
         `sweep --demo --out demo.jsonl && report pareto --store demo.jsonl \
         --md --out tests/golden/demo_pareto.md`"
    );

    // Compare (store against itself): all speedups exactly 1.0, and
    // byte-identical to the committed golden.
    let report = compare(&resolved.records, &resolved.records);
    assert_eq!(report.rows.len(), 224);
    assert!(report.rows.iter().all(|r| r.speedup == 1.0));
    let compare_md = markdown::compare_md(
        "demo",
        "demo",
        &report,
        "benchmark",
        &markdown::rows_by_benchmark(&report.rows),
    );
    assert_eq!(
        compare_md,
        include_str!("golden/demo_compare.md"),
        "compare report drifted from tests/golden/demo_compare.md"
    );

    // Sensitivity renders a valid standalone SVG naming the swept axes.
    let rows = sensitivity(&resolved.points, &resolved.records);
    assert!(!rows.is_empty());
    let chart = svg::sensitivity_svg("demo — per-axis swing", &rows);
    assert!(chart.starts_with("<svg xmlns=\"http://www.w3.org/2000/svg\""));
    assert!(chart.trim_end().ends_with("</svg>"));
    assert!(chart.contains("mem_latency"), "{chart}");
    let scatter = svg::pareto_svg("demo — cost vs cycles", &entries);
    assert!(scatter.starts_with("<svg xmlns=\"http://www.w3.org/2000/svg\""));
    assert!(scatter.matches("<circle").count() >= entries.len());
}

#[test]
fn legacy_headerless_stores_still_compare() {
    // Strip the header: the pre-declarative store format.  compare needs no
    // spec; pareto correctly refuses with an actionable error.
    let with_header = demo_store_text();
    let headerless: String = with_header
        .lines()
        .skip(1)
        .map(|l| format!("{l}\n"))
        .collect();
    let loaded = LoadedStore::from_text(&headerless);
    assert_eq!(loaded.header, None);
    assert_eq!(loaded.records.len(), 224);
    assert!(loaded.diagnostics.is_empty());

    let report = compare(&loaded.records, &loaded.records);
    assert_eq!(report.rows.len(), 224);
    assert_eq!(report.regressions, 0);

    let err = match ResolvedStore::resolve(&loaded) {
        Err(e) => e,
        Ok(_) => panic!("headerless store must not resolve"),
    };
    assert!(err.message.contains("no spec header"), "{err}");
}
